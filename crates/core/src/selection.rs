//! Selection at the granularity of semantic clusters (§III-C, §IV-C).
//!
//! Given a query vector, clusters are scored by the inner product between
//! the query and their centroids (inner product — not cosine — because it
//! aligns with the attention-weight computation, §III-C). Clusters are then
//! consumed in descending score order until the token budget is filled; the
//! last selected cluster is trimmed so the budget is never exceeded.
//!
//! Attention sinks and not-yet-clustered decode tokens are always retained
//! and are charged against the budget first.

use crate::clustering::SemanticClustering;
use crate::metadata::ClusterMetadata;
use clusterkv_kvcache::cluster_cache::PageRequest;
use clusterkv_kvcache::types::Budget;
use clusterkv_tensor::kernels::{matvec_t_into, par_matvec_rows, Workspace};
use clusterkv_tensor::vector::argsort_descending_into;
use serde::{Deserialize, Serialize};

/// Centroids per chunk when scoring in parallel: one score is a single
/// `d`-dimensional dot product, so small cluster counts (short contexts)
/// stay on one thread — scored by one blocked matvec straight into the
/// caller's workspace, with no allocation. The chunk size is a constant, so
/// per-row results (and thus the ranking) are identical at every thread
/// count.
const SCORE_MIN_CENTROIDS_PER_WORKER: usize = 128;

/// Outcome of one cluster-granularity selection step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionResult {
    /// Ids of the clusters that contributed tokens, in descending score
    /// order (the last one may have been trimmed).
    pub selected_clusters: Vec<usize>,
    /// Token indices to attend to: sinks, pending decode tokens, then
    /// cluster members. Never exceeds the budget.
    pub token_indices: Vec<usize>,
    /// Number of centroids scored against the query (the selection work the
    /// latency model charges for).
    pub scored_centroids: usize,
    /// Whether the last selected cluster was trimmed to fit the budget.
    pub trimmed_last_cluster: bool,
}

impl SelectionResult {
    /// Number of selected tokens.
    pub fn len(&self) -> usize {
        self.token_indices.len()
    }

    /// Whether nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.token_indices.is_empty()
    }

    /// The selection as cluster-granularity page requests for the tiered KV
    /// cache: one page per selected cluster, sized to the *whole* cluster.
    /// Recall operates at cluster granularity (Fig. 8's prefix-sum gather
    /// moves whole clusters) even when the last cluster's attention set was
    /// trimmed to the budget; sinks and pending decode tokens stay pinned on
    /// the GPU and are never paged.
    pub fn page_requests(&self, metadata: &ClusterMetadata) -> Vec<PageRequest> {
        self.selected_clusters
            .iter()
            .map(|&c| PageRequest::new(c, metadata.cluster_size(c)))
            .collect()
    }

    /// The member token positions of each selected cluster, aligned with
    /// [`page_requests`](SelectionResult::page_requests): `page_members(m)[i]`
    /// lists the absolute token positions backing `page_requests(m)[i]`.
    /// Recall-compressed plans (DESIGN.md §9) carry these so the attention
    /// kernel knows which attended tokens to substitute with their
    /// compressed representation.
    pub fn page_members(&self, metadata: &ClusterMetadata) -> Vec<Vec<usize>> {
        self.selected_clusters
            .iter()
            .map(|&c| metadata.cluster_tokens(c).to_vec())
            .collect()
    }
}

/// Select up to `budget` tokens for `query` from the clustering state of one
/// head.
///
/// The always-retained sets (attention sinks, pending decode tokens) are
/// charged against the budget first; remaining capacity is filled with the
/// members of the highest-scoring clusters, trimming the last cluster if
/// needed (§IV-C).
///
/// # Panics
///
/// Panics if `query.len()` differs from the centroid dimensionality when
/// clusters exist.
pub fn select_clusters(
    query: &[f32],
    clustering: &SemanticClustering,
    budget: Budget,
) -> SelectionResult {
    select_clusters_ws(query, clustering, budget, &mut Workspace::new())
}

/// [`select_clusters`] with a caller-owned [`Workspace`]: centroid scores
/// land in `ws.scores` (one blocked matvec over the centroid matrix) and the
/// ranking in `ws.idx`, so a warmed workspace makes the scoring + ranking
/// phase allocation-free. This is the path the `ClusterKV` selector's `plan`
/// takes every decode step.
pub fn select_clusters_ws(
    query: &[f32],
    clustering: &SemanticClustering,
    budget: Budget,
    ws: &mut Workspace,
) -> SelectionResult {
    let budget_tokens = budget.tokens();
    let mut token_indices: Vec<usize> = Vec::with_capacity(budget_tokens);
    // Guard against duplicate emission: pending decode tokens can overlap
    // sink positions (a harness may append at a position the clustering also
    // tracks as a sink), and defensively a cluster could contain an
    // always-retained token. An ordered set keeps the dedup structure (and
    // anything that ever iterates it) deterministic; at budget scale the
    // O(log n) insert is noise next to the matvec.
    let mut seen = std::collections::BTreeSet::new();

    // Always-retained tokens: attention sinks first, then the most recent
    // pending (unclustered) decode tokens.
    let sinks = clustering.sink_indices();
    let pending = clustering.pending_indices();
    for &s in sinks {
        if token_indices.len() >= budget_tokens {
            break;
        }
        if seen.insert(s) {
            token_indices.push(s);
        }
    }
    // Prefer the most recent pending tokens when the budget is tight.
    for &p in pending.iter().rev() {
        if token_indices.len() >= budget_tokens {
            break;
        }
        if seen.insert(p) {
            token_indices.push(p);
        }
    }

    let metadata = clustering.metadata();
    let centroids = clustering.centroids();
    if centroids.rows() == 0 || token_indices.len() >= budget_tokens {
        return SelectionResult {
            selected_clusters: Vec::new(),
            token_indices,
            scored_centroids: 0,
            trimmed_last_cluster: false,
        };
    }

    // Score clusters by inner product between the query and centroids — one
    // blocked matvec over the centroid matrix (the §IV-C batched scoring
    // kernel), chunk-parallel above SCORE_MIN_CENTROIDS_PER_WORKER. Per-row
    // arithmetic is canonical (DESIGN.md §6), so scores are byte-identical
    // at any thread count and chunking.
    assert_eq!(
        centroids.cols(),
        query.len(),
        "query dimension matches centroid dimension"
    );
    let rows = centroids.rows();
    if rows <= SCORE_MIN_CENTROIDS_PER_WORKER {
        matvec_t_into(centroids, query, &mut ws.scores);
    } else {
        let scores = par_matvec_rows(centroids, 0..rows, query, SCORE_MIN_CENTROIDS_PER_WORKER);
        ws.scores.clear();
        ws.scores.extend_from_slice(&scores);
    }
    // NaN scores (a degenerate query or poisoned centroid) rank strictly
    // last and deterministically, so a NaN can never hijack the budget.
    argsort_descending_into(&ws.scores, &mut ws.idx);

    let mut selected_clusters = Vec::new();
    let mut trimmed = false;
    let mut remaining = budget_tokens - token_indices.len();
    for &cluster in ws.idx.iter() {
        if remaining == 0 {
            break;
        }
        let members = metadata.cluster_tokens(cluster);
        // Members already retained (sinks/pending) must neither be emitted
        // twice nor charged against the budget again.
        let fresh: Vec<usize> = members
            .iter()
            .copied()
            .filter(|m| !seen.contains(m))
            .collect();
        if fresh.is_empty() {
            continue;
        }
        selected_clusters.push(cluster);
        if fresh.len() <= remaining {
            seen.extend(fresh.iter().copied());
            token_indices.extend_from_slice(&fresh);
            remaining -= fresh.len();
        } else {
            // Trim tokens from the last selected cluster to adhere to the
            // budget limit (§IV-C).
            seen.extend(fresh[..remaining].iter().copied());
            token_indices.extend_from_slice(&fresh[..remaining]);
            remaining = 0;
            trimmed = true;
        }
    }

    SelectionResult {
        selected_clusters,
        token_indices,
        scored_centroids: centroids.rows(),
        trimmed_last_cluster: trimmed,
    }
}

/// Nominate the clusters a *widened*-budget selection would pick, for
/// speculative staging (DESIGN.md §10): one blocked matvec scores every
/// centroid into `ws.scores`, the ranking lands in `ws.idx`, and the
/// nominated cluster ids are written to `ws.labels` in descending score
/// order. Returns the number of nominations.
///
/// Because greedy fill consumes the same descending-score ranking as
/// [`select_clusters_ws`], widening the budget by `lookahead_tokens`
/// nominates the step's own top clusters plus the next-best marginal
/// candidates — the pages most likely to be demanded at step `t+1` when the
/// query drifts. (The fill here charges whole cluster sizes and skips the
/// overlap dedup, so it is a fast approximation of the plan's fill, not a
/// byte-for-byte replay — accuracy is measured, not assumed, via
/// `PrefetchStats`.) The pass is read-only on the clustering state and
/// purely scratch-mutating on `ws`, so a prefetch hint can never change
/// what a later plan returns.
// analyzer: hot-path
pub fn lookahead_clusters_ws(
    query: &[f32],
    clustering: &SemanticClustering,
    budget: Budget,
    lookahead_tokens: usize,
    ws: &mut Workspace,
) -> usize {
    ws.labels.clear();
    let target = budget.tokens().saturating_add(lookahead_tokens);
    let retained = clustering.sink_indices().len() + clustering.pending_indices().len();
    let centroids = clustering.centroids();
    if centroids.rows() == 0 || retained >= target {
        return 0;
    }
    assert_eq!(
        centroids.cols(),
        query.len(),
        "query dimension matches centroid dimension"
    );
    // Single-threaded blocked matvec: the hint is one cheap pass and must
    // stay byte-identical at every thread count. NaN scores rank last
    // (argsort is total), so a poisoned query cannot hijack the staging
    // budget either.
    matvec_t_into(centroids, query, &mut ws.scores);
    argsort_descending_into(&ws.scores, &mut ws.idx);
    let metadata = clustering.metadata();
    let mut remaining = target - retained;
    for &cluster in ws.idx.iter() {
        if remaining == 0 {
            break;
        }
        let size = metadata.cluster_size(cluster);
        if size == 0 {
            continue;
        }
        ws.labels.push(cluster);
        remaining = remaining.saturating_sub(size);
    }
    ws.labels.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterKvConfig;
    use crate::distance::DistanceMetric;
    use clusterkv_tensor::Matrix;

    /// Build clustering state with three well separated directional groups:
    /// group A along +x (tokens 4..14), group B along +y (14..24), group C
    /// along -x (24..34). Sinks are tokens 0..4.
    fn directional_clustering() -> SemanticClustering {
        let dim = 4;
        let config = ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(10)
            .with_distance(DistanceMetric::Cosine);
        let mut rows = Vec::new();
        for i in 0..34 {
            let mut v = vec![0.0f32; dim];
            if i < 4 {
                v[3] = 1.0; // sinks: a direction of their own
            } else if i < 14 {
                v[0] = 1.0 + (i as f32) * 0.001;
            } else if i < 24 {
                v[1] = 1.0 + (i as f32) * 0.001;
            } else {
                v[0] = -1.0 - (i as f32) * 0.001;
            }
            rows.push(v);
        }
        let mut sc = SemanticClustering::new(config, dim);
        sc.prefill(&Matrix::from_rows(rows).unwrap());
        sc
    }

    #[test]
    fn selects_the_cluster_aligned_with_the_query() {
        let sc = directional_clustering();
        // Query along +x: tokens 4..14 should be preferred.
        let result = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(14));
        // 4 sinks + 10 aligned tokens fill the budget exactly.
        assert_eq!(result.len(), 14);
        for t in 4..14 {
            assert!(
                result.token_indices.contains(&t),
                "aligned token {t} missing from {:?}",
                result.token_indices
            );
        }
        // Anti-aligned tokens (24..34) must not appear.
        for t in 24..34 {
            assert!(!result.token_indices.contains(&t));
        }
        assert!(result.scored_centroids > 0);
    }

    #[test]
    fn sinks_are_always_retained() {
        let sc = directional_clustering();
        let result = select_clusters(&[0.0, 1.0, 0.0, 0.0], &sc, Budget::new(8));
        for s in 0..4 {
            assert!(result.token_indices.contains(&s), "sink {s} missing");
        }
        assert!(result.len() <= 8);
    }

    #[test]
    fn budget_is_never_exceeded_and_last_cluster_is_trimmed() {
        let sc = directional_clustering();
        // Budget 7: 4 sinks + 3 tokens from the best cluster (trimmed).
        let result = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(7));
        assert_eq!(result.len(), 7);
        assert!(result.trimmed_last_cluster);
        assert_eq!(result.selected_clusters.len(), 1);
    }

    #[test]
    fn page_requests_cover_selected_clusters_at_full_size() {
        let sc = directional_clustering();
        // Budget 7 trims the aligned 10-token cluster to 3 attended tokens,
        // but recall stays cluster granular: the page covers all 10.
        let result = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(7));
        assert!(result.trimmed_last_cluster);
        let pages = result.page_requests(sc.metadata());
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].page, result.selected_clusters[0]);
        assert_eq!(pages[0].tokens, 10);
    }

    #[test]
    fn page_members_align_with_page_requests() {
        let sc = directional_clustering();
        let result = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(20));
        let pages = result.page_requests(sc.metadata());
        let members = result.page_members(sc.metadata());
        assert_eq!(pages.len(), members.len());
        for (page, mem) in pages.iter().zip(&members) {
            assert_eq!(page.tokens, mem.len(), "members back the whole page");
            assert_eq!(mem, sc.metadata().cluster_tokens(page.page));
            assert!(mem.windows(2).all(|w| w[0] < w[1]), "ascending positions");
        }
    }

    #[test]
    fn selection_is_recallable_across_queries() {
        // The same clustering state serves different queries: tokens ignored
        // for one query are recalled for another — the core recallability
        // property (Fig. 1d).
        let sc = directional_clustering();
        let toward_x = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(10));
        let toward_y = select_clusters(&[0.0, 1.0, 0.0, 0.0], &sc, Budget::new(10));
        let x_tokens: std::collections::HashSet<_> =
            toward_x.token_indices.iter().copied().collect();
        // Tokens 14..24 are ignored by the +x query but recalled by +y.
        assert!((14..24).all(|t| !x_tokens.contains(&t)));
        assert!((14..20).any(|t| toward_y.token_indices.contains(&t)));
    }

    #[test]
    fn pending_tokens_are_always_kept() {
        let mut sc = directional_clustering();
        sc.append(34, &[0.0, 0.0, 1.0, 0.0]);
        sc.append(35, &[0.0, 0.0, 1.0, 0.0]);
        let result = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(12));
        assert!(result.token_indices.contains(&34));
        assert!(result.token_indices.contains(&35));
        assert!(result.len() <= 12);
    }

    #[test]
    fn tiny_budget_prefers_sinks_then_recent_pending() {
        let mut sc = directional_clustering();
        for i in 0..6 {
            sc.append(34 + i, &[0.0, 0.0, 1.0, 0.0]);
        }
        let result = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(6));
        assert_eq!(result.len(), 6);
        // 4 sinks + the 2 most recent pending tokens.
        assert!(result.token_indices.contains(&39));
        assert!(result.token_indices.contains(&38));
        assert!(result.selected_clusters.is_empty());
    }

    #[test]
    fn no_clusters_returns_only_always_retained() {
        let config = ClusterKvConfig::default().with_sink_tokens(4);
        let mut sc = SemanticClustering::new(config, 4);
        sc.prefill(&Matrix::from_rows(vec![vec![1.0, 0.0, 0.0, 0.0]; 3]).unwrap());
        let result = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(8));
        assert_eq!(result.token_indices, vec![0, 1, 2]);
        assert_eq!(result.scored_centroids, 0);
    }

    #[test]
    fn nan_scores_neither_panic_nor_win_selection() {
        // Regression: a NaN query poisons every centroid score. The old
        // `partial_cmp().unwrap_or(Equal)` ranking was a non-total order
        // (sort_by may panic) and nondeterministic; with NaN ranked last the
        // selection falls back to cluster-index order, deterministically.
        let sc = directional_clustering();
        let nan_query = [f32::NAN, 0.0, 0.0, 0.0];
        let first = select_clusters(&nan_query, &sc, Budget::new(14));
        let second = select_clusters(&nan_query, &sc, Budget::new(14));
        assert_eq!(first.token_indices, second.token_indices);
        assert_eq!(first.selected_clusters, second.selected_clusters);
        assert!(first.len() <= 14);
        assert_unique(&first);
        // Sinks are still retained ahead of any (all-NaN-scored) cluster.
        for s in 0..4 {
            assert!(first.token_indices.contains(&s), "sink {s} missing");
        }
        // All scores are NaN, so clusters are consumed in index order.
        assert_eq!(first.selected_clusters, vec![0]);
    }

    #[test]
    fn nan_scores_respect_budget_at_every_size() {
        let sc = directional_clustering();
        let nan_query = [f32::NAN; 4];
        for budget in [0usize, 1, 4, 7, 14, 34, 100] {
            let result = select_clusters(&nan_query, &sc, Budget::new(budget));
            assert!(result.len() <= budget);
            assert_unique(&result);
        }
    }

    #[test]
    fn workspace_path_matches_fresh_workspace_and_reuses_buffers() {
        let sc = directional_clustering();
        let queries = [
            [1.0f32, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.3, -0.9, 0.2, 0.0],
        ];
        let mut ws = clusterkv_tensor::kernels::Workspace::new();
        // Warm the buffers, then the steady state must not grow them.
        let _ = select_clusters_ws(&queries[0], &sc, Budget::new(14), &mut ws);
        let warm = ws.allocated_bytes();
        for q in &queries {
            for budget in [3usize, 7, 14, 34] {
                let reused = select_clusters_ws(q, &sc, Budget::new(budget), &mut ws);
                let fresh = select_clusters(q, &sc, Budget::new(budget));
                assert_eq!(reused.token_indices, fresh.token_indices);
                assert_eq!(reused.selected_clusters, fresh.selected_clusters);
                assert_eq!(reused.trimmed_last_cluster, fresh.trimmed_last_cluster);
            }
        }
        assert_eq!(
            ws.allocated_bytes(),
            warm,
            "workspace must not grow in steady state"
        );
    }

    #[test]
    fn lookahead_nominates_a_superset_of_the_selected_clusters() {
        let sc = directional_clustering();
        let mut ws = clusterkv_tensor::kernels::Workspace::new();
        let q = [1.0f32, 0.2, 0.0, 0.0];
        let plan = select_clusters_ws(&q, &sc, Budget::new(14), &mut ws);
        let n = lookahead_clusters_ws(&q, &sc, Budget::new(14), 10, &mut ws);
        assert!(n >= plan.selected_clusters.len());
        for c in &plan.selected_clusters {
            assert!(
                ws.labels[..n].contains(c),
                "lookahead must keep the step's own cluster {c}"
            );
        }
        // The widened budget pulls in at least one marginal candidate here
        // (three 10-token clusters, budget 14 → 1 selected, 24 → 2).
        assert!(n > plan.selected_clusters.len());
    }

    #[test]
    fn lookahead_is_scratch_only_and_deterministic() {
        let sc = directional_clustering();
        let q = [0.1f32, 1.0, 0.0, 0.0];
        let mut ws = clusterkv_tensor::kernels::Workspace::new();
        let before = select_clusters_ws(&q, &sc, Budget::new(12), &mut ws);
        let n1 = lookahead_clusters_ws(&q, &sc, Budget::new(12), 8, &mut ws);
        let first: Vec<usize> = ws.labels[..n1].to_vec();
        let n2 = lookahead_clusters_ws(&q, &sc, Budget::new(12), 8, &mut ws);
        assert_eq!(n1, n2);
        assert_eq!(first, ws.labels[..n2]);
        // The hint is scratch-only: the next plan is byte-identical to the
        // one before the hint ran.
        let after = select_clusters_ws(&q, &sc, Budget::new(12), &mut ws);
        assert_eq!(before.token_indices, after.token_indices);
        assert_eq!(before.selected_clusters, after.selected_clusters);
        // Steady state allocates nothing new.
        let warm = ws.allocated_bytes();
        for _ in 0..10 {
            let _ = lookahead_clusters_ws(&q, &sc, Budget::new(12), 8, &mut ws);
        }
        assert_eq!(ws.allocated_bytes(), warm, "lookahead must be zero-alloc");
    }

    #[test]
    fn lookahead_with_zero_extra_tokens_covers_the_plan() {
        let sc = directional_clustering();
        let mut ws = clusterkv_tensor::kernels::Workspace::new();
        let q = [1.0f32, 0.0, 0.0, 0.0];
        let plan = select_clusters_ws(&q, &sc, Budget::new(14), &mut ws);
        let n = lookahead_clusters_ws(&q, &sc, Budget::new(14), 0, &mut ws);
        assert_eq!(ws.labels[..n], plan.selected_clusters);
    }

    #[test]
    fn lookahead_handles_empty_and_saturated_states() {
        let config = ClusterKvConfig::default().with_sink_tokens(4);
        let mut sc = SemanticClustering::new(config, 4);
        sc.prefill(&Matrix::from_rows(vec![vec![1.0, 0.0, 0.0, 0.0]; 3]).unwrap());
        let mut ws = clusterkv_tensor::kernels::Workspace::new();
        // No clusters: nothing to nominate.
        assert_eq!(
            lookahead_clusters_ws(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(8), 4, &mut ws),
            0
        );
        // Retained tokens already exceed the widened budget.
        let sc = directional_clustering();
        assert_eq!(
            lookahead_clusters_ws(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(2), 1, &mut ws),
            0
        );
    }

    #[test]
    fn selected_tokens_are_unique() {
        let sc = directional_clustering();
        let result = select_clusters(&[0.3, 0.9, 0.0, 0.0], &sc, Budget::new(20));
        let set: std::collections::HashSet<_> = result.token_indices.iter().collect();
        assert_eq!(set.len(), result.token_indices.len());
    }

    fn assert_unique(result: &SelectionResult) {
        let set: std::collections::HashSet<_> = result.token_indices.iter().collect();
        assert_eq!(
            set.len(),
            result.token_indices.len(),
            "duplicate indices in {:?}",
            result.token_indices
        );
    }

    #[test]
    fn pending_overlapping_sink_positions_is_deduplicated() {
        // A pending decode token at a position that is also a sink must be
        // emitted once, even when sinks + pending alone exceed the budget.
        let mut sc = directional_clustering();
        sc.append(2, &[0.0, 0.0, 1.0, 0.0]); // overlaps sink position 2
        sc.append(34, &[0.0, 0.0, 1.0, 0.0]);
        sc.append(35, &[0.0, 0.0, 1.0, 0.0]);
        for budget in [3usize, 5, 7, 20] {
            let result = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(budget));
            assert!(
                result.len() <= budget,
                "budget {budget} exceeded: {}",
                result.len()
            );
            assert_unique(&result);
        }
        // With room for everything, the overlapping position appears once
        // and both genuine pending tokens are retained.
        let roomy = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(20));
        assert_eq!(roomy.token_indices.iter().filter(|&&t| t == 2).count(), 1);
        assert!(roomy.token_indices.contains(&34));
        assert!(roomy.token_indices.contains(&35));
    }

    #[test]
    fn sinks_and_pending_exceeding_budget_do_not_panic() {
        let mut sc = directional_clustering(); // 4 sinks
        for i in 0..10 {
            sc.append(34 + i, &[0.0, 0.0, 1.0, 0.0]);
        }
        // Budgets below, at and just above the always-retained count.
        for budget in [0usize, 1, 2, 4, 6, 13, 14, 15] {
            let result = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(budget));
            assert!(result.len() <= budget);
            assert_unique(&result);
        }
        // Budget exactly equal to sinks + pending: fully consumed by the
        // always-retained sets, no clusters selected.
        let exact = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(14));
        assert_eq!(exact.len(), 14);
        assert!(exact.selected_clusters.is_empty());
    }

    #[test]
    fn cluster_members_overlapping_retained_tokens_are_not_double_counted() {
        // Tokens 4..14 form the +x cluster; a pending token at position 5
        // overlaps it. The cluster's remaining members must still fill the
        // budget without emitting 5 twice.
        let mut sc = directional_clustering();
        sc.append(5, &[1.0, 0.0, 0.0, 0.0]);
        let result = select_clusters(&[1.0, 0.0, 0.0, 0.0], &sc, Budget::new(15));
        assert_unique(&result);
        assert_eq!(result.len(), 15);
        assert_eq!(result.token_indices.iter().filter(|&&t| t == 5).count(), 1);
        // All members of the aligned cluster are still selected.
        for t in 4..14 {
            assert!(result.token_indices.contains(&t), "token {t} missing");
        }
    }
}
