//! Cluster metadata: sizes, prefix sums and label-sorted token indices.
//!
//! This is the metadata of Fig. 8: after clustering, ClusterKV stores for
//! each head the cluster sizes, their prefix sum and the token indices
//! sorted by cluster label, so that during decoding the indices of the
//! tokens belonging to any set of clusters can be gathered with simple
//! offset arithmetic instead of a scan over all tokens.

use serde::{Deserialize, Serialize};

/// Per-head cluster metadata built from a label assignment.
///
/// Token indices stored here are *global* token positions (the caller passes
/// the position of each clustered token), so clusters created at different
/// times (prefill vs incremental decode clustering) can coexist in one
/// metadata table.
///
/// # Examples
///
/// ```
/// use clusterkv::ClusterMetadata;
///
/// // Tokens 10..16 with labels as in Fig. 8: k0,k5 -> cluster 2,
/// // k1 -> cluster 0, k2,k3,k4 -> cluster 1.
/// let mut meta = ClusterMetadata::new();
/// meta.extend(&[(10, 2), (11, 0), (12, 1), (13, 1), (14, 1), (15, 2)], 3);
/// assert_eq!(meta.cluster_size(0), 1);
/// assert_eq!(meta.cluster_size(1), 3);
/// assert_eq!(meta.cluster_size(2), 2);
/// assert_eq!(meta.cluster_tokens(2), &[10, 15]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterMetadata {
    /// Number of tokens in each cluster.
    sizes: Vec<usize>,
    /// Exclusive prefix sum of `sizes` (length = clusters + 1).
    prefix: Vec<usize>,
    /// Token indices grouped by cluster label (cluster 0's tokens first).
    sorted_indices: Vec<usize>,
}

impl ClusterMetadata {
    /// Empty metadata (no clusters).
    pub fn new() -> Self {
        Self {
            sizes: Vec::new(),
            prefix: vec![0],
            sorted_indices: Vec::new(),
        }
    }

    /// Number of clusters described.
    pub fn num_clusters(&self) -> usize {
        self.sizes.len()
    }

    /// Total number of clustered tokens.
    pub fn num_tokens(&self) -> usize {
        self.sorted_indices.len()
    }

    /// Size of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cluster_size(&self, c: usize) -> usize {
        self.sizes[c]
    }

    /// All cluster sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Exclusive prefix sum over cluster sizes (length `num_clusters() + 1`).
    pub fn prefix_sum(&self) -> &[usize] {
        &self.prefix
    }

    /// Token indices belonging to cluster `c`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cluster_tokens(&self, c: usize) -> &[usize] {
        &self.sorted_indices[self.prefix[c]..self.prefix[c + 1]]
    }

    /// Append `added_clusters` new clusters populated from `(token, label)`
    /// pairs, where labels are relative to the new clusters (0-based).
    ///
    /// This is used both for the prefill clustering (one call) and for each
    /// incremental decode clustering (labels of the `C+` new clusters).
    ///
    /// # Panics
    ///
    /// Panics if a label is `>= added_clusters`.
    pub fn extend(&mut self, assignments: &[(usize, usize)], added_clusters: usize) {
        let base = self.sizes.len();
        self.sizes.extend(std::iter::repeat_n(0, added_clusters));

        // Group the new tokens by label, preserving insertion order.
        let mut grouped: Vec<Vec<usize>> = vec![Vec::new(); added_clusters];
        for &(token, label) in assignments {
            assert!(
                label < added_clusters,
                "label {label} out of range for {added_clusters} new clusters"
            );
            grouped[label].push(token);
            self.sizes[base + label] += 1;
        }
        for group in grouped {
            self.sorted_indices.extend(group);
        }
        self.rebuild_prefix();
    }

    fn rebuild_prefix(&mut self) {
        self.prefix.clear();
        self.prefix.push(0);
        let mut acc = 0;
        for &s in &self.sizes {
            acc += s;
            self.prefix.push(acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_metadata() {
        let m = ClusterMetadata::new();
        assert_eq!(m.num_clusters(), 0);
        assert_eq!(m.num_tokens(), 0);
        assert_eq!(m.prefix_sum(), &[0]);
    }

    #[test]
    fn figure_8_example() {
        // Fig. 8: keys k0..k5; k0,k5 in cluster 2; k1 in cluster 0;
        // k2,k3,k4 in cluster 1. Sizes = [1,3,2], prefix = [0,1,4,6],
        // sorted indices = [1, 2,3,4, 0,5].
        let mut m = ClusterMetadata::new();
        m.extend(&[(0, 2), (1, 0), (2, 1), (3, 1), (4, 1), (5, 2)], 3);
        assert_eq!(m.sizes(), &[1, 3, 2]);
        assert_eq!(m.prefix_sum(), &[0, 1, 4, 6]);
        assert_eq!(m.cluster_tokens(0), &[1]);
        assert_eq!(m.cluster_tokens(1), &[2, 3, 4]);
        assert_eq!(m.cluster_tokens(2), &[0, 5]);
        assert_eq!(m.num_tokens(), 6);
    }

    #[test]
    fn incremental_extension_appends_clusters() {
        let mut m = ClusterMetadata::new();
        m.extend(&[(16, 0), (17, 1), (18, 0)], 2);
        assert_eq!(m.num_clusters(), 2);
        // Incremental clustering of decode tokens 19..22 into 2 new clusters.
        m.extend(&[(19, 1), (20, 0), (21, 1), (22, 1)], 2);
        assert_eq!(m.num_clusters(), 4);
        assert_eq!(m.cluster_tokens(2), &[20]);
        assert_eq!(m.cluster_tokens(3), &[19, 21, 22]);
        // Earlier clusters are untouched.
        assert_eq!(m.cluster_tokens(0), &[16, 18]);
        assert_eq!(m.prefix_sum().last().copied(), Some(7));
    }

    #[test]
    fn empty_clusters_are_representable() {
        let mut m = ClusterMetadata::new();
        m.extend(&[(0, 0), (1, 0)], 3);
        assert_eq!(m.sizes(), &[2, 0, 0]);
        assert_eq!(m.cluster_tokens(1), &[] as &[usize]);
        assert_eq!(m.cluster_tokens(2), &[] as &[usize]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let mut m = ClusterMetadata::new();
        m.extend(&[(0, 2)], 2);
    }

    proptest! {
        #[test]
        fn prefix_sum_is_consistent_with_sizes(
            labels in proptest::collection::vec(0usize..5, 1..50),
        ) {
            let assignments: Vec<(usize, usize)> =
                labels.iter().enumerate().map(|(t, &l)| (t + 100, l)).collect();
            let mut m = ClusterMetadata::new();
            m.extend(&assignments, 5);
            prop_assert_eq!(m.num_clusters(), 5);
            prop_assert_eq!(m.num_tokens(), labels.len());
            let prefix = m.prefix_sum();
            for c in 0..5 {
                prop_assert_eq!(prefix[c + 1] - prefix[c], m.cluster_size(c));
                prop_assert_eq!(m.cluster_tokens(c).len(), m.cluster_size(c));
            }
            // Every token appears exactly once across clusters.
            let mut all: Vec<usize> = (0..5).flat_map(|c| m.cluster_tokens(c).to_vec()).collect();
            all.sort_unstable();
            let mut expected: Vec<usize> = assignments.iter().map(|&(t, _)| t).collect();
            expected.sort_unstable();
            prop_assert_eq!(all, expected);
        }
    }
}
