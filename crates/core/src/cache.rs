//! Cluster-granularity cache of selected KV on the GPU (§IV-D).
//!
//! During decoding ClusterKV keeps the KV of the clusters selected in the
//! last `R` steps resident in GPU memory. At the current step, selected
//! clusters already resident are *hits* (no PCIe transfer); the rest are
//! *misses* and must be fetched from CPU memory. The paper finds `R = 1`
//! (keeping only the previous step's clusters) to be a good trade-off, with
//! token-level hit rates of 63 % (`R = 1`) and 74 % (`R = 2`).

use clusterkv_kvcache::stats::CacheStats;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// Outcome of one cache access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheAccess {
    /// Selected clusters already resident on the GPU.
    pub hit_clusters: Vec<usize>,
    /// Selected clusters that must be fetched from CPU memory.
    pub missed_clusters: Vec<usize>,
    /// Number of tokens in hit clusters.
    pub hit_tokens: usize,
    /// Number of tokens in missed clusters.
    pub missed_tokens: usize,
}

/// Recency cache over selected cluster ids.
///
/// # Examples
///
/// ```
/// use clusterkv::ClusterCache;
///
/// let mut cache = ClusterCache::new(1);
/// let sizes = |c: usize| 10 + c; // pretend cluster c has 10 + c tokens
/// let first = cache.access(&[0, 1], sizes);
/// assert_eq!(first.hit_clusters.len(), 0);
/// let second = cache.access(&[1, 2], sizes);
/// assert_eq!(second.hit_clusters, vec![1]);
/// assert_eq!(second.missed_clusters, vec![2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterCache {
    recency_window: usize,
    /// Cluster-id sets selected in the last `R` steps (front = oldest).
    history: VecDeque<HashSet<usize>>,
    /// Token-level hit/miss statistics.
    stats: CacheStats,
}

impl ClusterCache {
    /// Create a cache retaining the clusters of the last `recency_window`
    /// steps. A window of 0 disables caching (every access misses).
    pub fn new(recency_window: usize) -> Self {
        Self {
            recency_window,
            history: VecDeque::new(),
            stats: CacheStats::new(),
        }
    }

    /// The recency window `R`.
    pub fn recency_window(&self) -> usize {
        self.recency_window
    }

    /// Token-level hit/miss statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether a cluster is currently resident.
    pub fn contains(&self, cluster: usize) -> bool {
        self.history.iter().any(|step| step.contains(&cluster))
    }

    /// Look up the selected clusters, record hit/miss statistics (weighted by
    /// `cluster_size`), and update the recency window with this step's
    /// selection.
    pub fn access<F>(&mut self, selected_clusters: &[usize], cluster_size: F) -> CacheAccess
    where
        F: Fn(usize) -> usize,
    {
        let mut hit_clusters = Vec::new();
        let mut missed_clusters = Vec::new();
        let mut hit_tokens = 0usize;
        let mut missed_tokens = 0usize;
        for &c in selected_clusters {
            let size = cluster_size(c);
            if self.contains(c) {
                hit_clusters.push(c);
                hit_tokens += size;
            } else {
                missed_clusters.push(c);
                missed_tokens += size;
            }
        }
        self.stats.record_hits(hit_tokens as u64);
        self.stats.record_misses(missed_tokens as u64);

        if self.recency_window > 0 {
            self.history
                .push_back(selected_clusters.iter().copied().collect());
            while self.history.len() > self.recency_window {
                self.history.pop_front();
            }
        }

        CacheAccess {
            hit_clusters,
            missed_clusters,
            hit_tokens,
            missed_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_size(_c: usize) -> usize {
        1
    }

    #[test]
    fn first_access_is_all_misses() {
        let mut cache = ClusterCache::new(1);
        let a = cache.access(&[1, 2, 3], unit_size);
        assert!(a.hit_clusters.is_empty());
        assert_eq!(a.missed_clusters, vec![1, 2, 3]);
        assert_eq!(a.missed_tokens, 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn repeat_selection_hits_with_r1() {
        let mut cache = ClusterCache::new(1);
        cache.access(&[1, 2], unit_size);
        let a = cache.access(&[1, 2], unit_size);
        assert_eq!(a.hit_clusters, vec![1, 2]);
        assert!(a.missed_clusters.is_empty());
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn r1_forgets_after_one_step() {
        let mut cache = ClusterCache::new(1);
        cache.access(&[1], unit_size);
        cache.access(&[2], unit_size);
        // Cluster 1 was selected two steps ago: with R = 1 it is gone.
        let a = cache.access(&[1], unit_size);
        assert_eq!(a.missed_clusters, vec![1]);
    }

    #[test]
    fn r2_retains_two_steps() {
        let mut cache = ClusterCache::new(2);
        cache.access(&[1], unit_size);
        cache.access(&[2], unit_size);
        let a = cache.access(&[1, 2], unit_size);
        assert_eq!(a.hit_clusters, vec![1, 2]);
    }

    #[test]
    fn larger_window_never_has_lower_hit_rate() {
        // Alternating selections: R=2 must hit at least as often as R=1.
        let pattern: Vec<Vec<usize>> = (0..40).map(|i| vec![i % 3, (i + 1) % 3]).collect();
        let mut r1 = ClusterCache::new(1);
        let mut r2 = ClusterCache::new(2);
        for sel in &pattern {
            r1.access(sel, unit_size);
            r2.access(sel, unit_size);
        }
        assert!(r2.stats().hit_rate() >= r1.stats().hit_rate());
        assert!(r2.stats().hit_rate() > 0.5);
    }

    #[test]
    fn zero_window_disables_caching() {
        let mut cache = ClusterCache::new(0);
        cache.access(&[1], unit_size);
        let a = cache.access(&[1], unit_size);
        assert_eq!(a.missed_clusters, vec![1]);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.recency_window(), 0);
    }

    #[test]
    fn token_weighted_statistics() {
        let sizes = |c: usize| if c == 0 { 100 } else { 10 };
        let mut cache = ClusterCache::new(1);
        cache.access(&[0, 1], sizes); // 110 missed tokens
        cache.access(&[0], sizes); // 100 hit tokens
        let s = cache.stats();
        assert_eq!(s.misses, 110);
        assert_eq!(s.hits, 100);
        assert!(cache.contains(0));
        assert!(!cache.contains(1));
    }
}
