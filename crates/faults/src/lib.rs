//! Deterministic fault injection for the ClusterKV serving stack.
//!
//! Real serving fleets lose transfers, corrupt pages and run out of memory;
//! a deterministic simulation must model those events without giving up a
//! single bit of reproducibility. This crate provides the three pieces the
//! recovery seams in `kvcache`/`model`/`sched` build on:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — a seeded fault schedule. Every
//!   decision is a pure function of `(seed, site, step)`: no wall clock, no
//!   global RNG, no state. Two runs with the same plan inject exactly the
//!   same faults at exactly the same points, at any thread count.
//! * [`Fnv64`] / [`fnv1a64`] — a hand-rolled FNV-1a page checksum. Each
//!   absorption step `h ← (h ⊕ b) · prime` is a bijection of the state for a
//!   fixed byte and injective in the byte for a fixed state, so flipping any
//!   single byte of a page is *guaranteed* to change the checksum — the
//!   property the detect-and-repair machinery (and its proptest) leans on.
//! * [`IntegrityStats`] — per-session counters for injected/detected/
//!   repaired corruptions and retried transfers, with the repo's NaN-guarded
//!   ratio-accessor convention.
//!
//! The cardinal invariant, shared with every other subsystem here: faults
//! may move **bytes and time**, never **what attends**. Injected corruption
//! flips stored checksums (the model of a damaged transfer), repairs
//! re-fetch from the pristine backing store, and retries charge the modeled
//! clock — token streams are byte-identical faults-on vs faults-off.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

// ------------------------------------------------------------- checksums

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime (odd, hence invertible modulo 2^64).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// XOR mask injection hooks apply to a sealed checksum to model in-memory
/// corruption. Non-zero, so a corrupted checksum never verifies; XOR, so the
/// damage is deterministic and involutive (corrupting twice restores).
pub const CORRUPTION_MASK: u64 = 0xdead_beef_0bad_f00d;

/// Streaming FNV-1a 64-bit hasher for page contents.
///
/// # Examples
///
/// ```
/// use clusterkv_faults::Fnv64;
/// let mut h = Fnv64::new();
/// h.write_bytes(b"page");
/// h.write_f32s(&[1.0, -2.5]);
/// assert_ne!(h.finish(), Fnv64::new().finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorb one byte: `h ← (h ⊕ b) · prime`.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state = (self.state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Absorb a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorb a `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb an `f32` slice through the bit patterns (little-endian), so
    /// the checksum commits to the exact stored representation including
    /// signed zeros and NaN payloads.
    pub fn write_f32s(&mut self, values: &[f32]) {
        for &v in values {
            self.write_bytes(&v.to_bits().to_le_bytes());
        }
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// One-shot FNV-1a 64 over the bit patterns of an `f32` slice.
pub fn fnv1a64_f32(values: &[f32]) -> u64 {
    let mut h = Fnv64::new();
    h.write_f32s(values);
    h.finish()
}

// ------------------------------------------------------------ fault sites

/// Named injection points. Each site draws from its own decision stream so
/// turning one fault class on never perturbs another's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultSite {
    /// Demand recall of paged-out KV during a decode step.
    DemandRecall,
    /// Speculative staging transfer (prefetch path).
    Staging,
    /// Promotion of a compressed page back to the exact tier.
    CompressedPromotion,
    /// Adoption of shared prefix pages / selector state from the store.
    PrefixAdoption,
    /// Whole-session fault: the scheduler must checkpoint-release and retry.
    SessionCrash,
    /// Capacity-shrink pressure event (the degradation-ladder trigger).
    Pressure,
}

impl FaultSite {
    /// Stable display name (used in bench output and diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DemandRecall => "demand-recall",
            FaultSite::Staging => "staging",
            FaultSite::CompressedPromotion => "compressed-promotion",
            FaultSite::PrefixAdoption => "prefix-adoption",
            FaultSite::SessionCrash => "session-crash",
            FaultSite::Pressure => "pressure",
        }
    }

    /// Per-site salt separating the decision streams.
    fn salt(self) -> u64 {
        match self {
            FaultSite::DemandRecall => 0x9e37_79b9_7f4a_7c15,
            FaultSite::Staging => 0xbf58_476d_1ce4_e5b9,
            FaultSite::CompressedPromotion => 0x94d0_49bb_1331_11eb,
            FaultSite::PrefixAdoption => 0xd6e8_feb8_6659_fd93,
            FaultSite::SessionCrash => 0xa076_1d64_95b5_d3db,
            FaultSite::Pressure => 0xe703_7ed1_a0b4_28db,
        }
    }
}

// ------------------------------------------------------------- fault plan

/// The seeded fault schedule: per-class rates plus recovery knobs. The
/// default ([`FaultPlan::disabled`]) injects nothing, and every seam in the
/// stack treats it as a true no-op — zero retried bytes, zero backoff —
/// so a disabled plan is bit-identical to no plan at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of every decision stream.
    pub seed: u64,
    /// Per-attempt probability that a modeled transfer fails and must be
    /// retransmitted, in `[0, 1)`.
    pub transfer_failure_rate: f64,
    /// Per-access probability that a page arrives corrupted (detected by
    /// its checksum and repaired from backing), in `[0, 1)`.
    pub corruption_rate: f64,
    /// Per-(request, decode step) probability of a whole-session fault the
    /// scheduler must retry, in `[0, 1)`.
    pub crash_rate: f64,
    /// Per-tick probability of a capacity-shrink pressure event, in `[0, 1)`.
    pub pressure_rate: f64,
    /// Effective-capacity factor during a pressure event, in `(0, 1]`.
    pub pressure_floor: f64,
    /// Cap on modeled attempts per transfer (>= 1; 1 disables retries).
    pub max_transfer_attempts: u32,
    /// Modeled delay before the first retransmit, in seconds; attempt `k`
    /// waits `backoff_base * 2^(k-1)` (see [`backoff_seconds`]).
    pub backoff_base: f64,
}

impl FaultPlan {
    /// The no-fault plan: every rate zero, retries capped at one attempt.
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            transfer_failure_rate: 0.0,
            corruption_rate: 0.0,
            crash_rate: 0.0,
            pressure_rate: 0.0,
            pressure_floor: 1.0,
            max_transfer_attempts: 1,
            backoff_base: 0.0,
        }
    }

    /// A uniform plan scaling every fault class from one knob: transfers
    /// fail and pressure strikes at `rate`, corruption at `rate / 2`, whole
    /// sessions crash at `rate / 8` (crashes are the rarest and most
    /// expensive real-world event class).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            transfer_failure_rate: rate,
            corruption_rate: rate / 2.0,
            crash_rate: rate / 8.0,
            pressure_rate: rate,
            pressure_floor: 0.5,
            max_transfer_attempts: 4,
            backoff_base: 50e-6,
        }
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.transfer_failure_rate > 0.0
            || self.corruption_rate > 0.0
            || self.crash_rate > 0.0
            || self.pressure_rate > 0.0
    }

    /// Validate the plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: rates must be
    /// finite and in `[0, 1)`, the pressure floor in `(0, 1]`, at least one
    /// transfer attempt, and a finite non-negative backoff base.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("transfer_failure_rate", self.transfer_failure_rate),
            ("corruption_rate", self.corruption_rate),
            ("crash_rate", self.crash_rate),
            ("pressure_rate", self.pressure_rate),
        ] {
            if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
                return Err(format!("{name} must be finite and in [0, 1), got {rate}"));
            }
        }
        if !(self.pressure_floor.is_finite()
            && self.pressure_floor > 0.0
            && self.pressure_floor <= 1.0)
        {
            return Err(format!(
                "pressure_floor must be in (0, 1], got {}",
                self.pressure_floor
            ));
        }
        if self.max_transfer_attempts == 0 {
            return Err("max_transfer_attempts must be at least 1".to_string());
        }
        if !self.backoff_base.is_finite() || self.backoff_base < 0.0 {
            return Err(format!(
                "backoff_base must be finite and non-negative, got {}",
                self.backoff_base
            ));
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

// ---------------------------------------------------------------- injector

/// Lanes separating the draws one `(site, step)` pair may need (an attempt
/// sequence and a corruption coin must not share a stream).
const LANE_ATTEMPT: u64 = 1;
const LANE_CORRUPT: u64 = 2;
const LANE_EVENT: u64 = 3;

/// Deterministic fault oracle over a [`FaultPlan`]. Stateless: every query
/// is a pure function of `(plan.seed, site, step, lane)` through a
/// splitmix64-style finalizer, so queries commute, repeat and parallelize
/// freely without changing a single decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault class can fire (a disabled injector is a no-op).
    pub fn enabled(&self) -> bool {
        self.plan.enabled()
    }

    /// splitmix64 finalizer over the combined decision key.
    fn mix(&self, site: FaultSite, step: u64, lane: u64) -> u64 {
        let mut z = self
            .plan
            .seed
            .wrapping_add(site.salt())
            .wrapping_add(step.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(lane.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` for `(site, step, lane)` — 53 mantissa bits.
    fn u01(&self, site: FaultSite, step: u64, lane: u64) -> f64 {
        (self.mix(site, step, lane) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Modeled attempts for one transfer at `(site, step)`: a geometric
    /// series of failures at the plan's per-attempt rate, capped at
    /// `max_transfer_attempts`. Always at least 1 (the attempt that
    /// succeeds); exactly 1 when retries are disabled or the coin never
    /// lands on failure.
    pub fn transfer_attempts(&self, site: FaultSite, step: u64) -> u32 {
        let rate = self.plan.transfer_failure_rate;
        if rate <= 0.0 {
            return 1;
        }
        let mut attempts = 1u32;
        while attempts < self.plan.max_transfer_attempts
            && self.u01(
                site,
                step,
                LANE_ATTEMPT.wrapping_add(u64::from(attempts) << 8),
            ) < rate
        {
            attempts += 1;
        }
        attempts
    }

    /// Whether the page accessed at `(site, step)` arrives corrupted.
    pub fn should_corrupt(&self, site: FaultSite, step: u64) -> bool {
        self.plan.corruption_rate > 0.0
            && self.u01(site, step, LANE_CORRUPT) < self.plan.corruption_rate
    }

    /// Whether the session serving `request` crashes at decode step `step`.
    pub fn should_crash(&self, request: u64, step: u64) -> bool {
        self.plan.crash_rate > 0.0
            && self.u01(
                FaultSite::SessionCrash,
                request
                    .wrapping_mul(0x2545_f491_4f6c_dd1d)
                    .wrapping_add(step),
                LANE_EVENT,
            ) < self.plan.crash_rate
    }

    /// Effective-capacity factor at scheduler tick `tick`: `1.0` normally,
    /// the plan's `pressure_floor` during a pressure event.
    pub fn pressure_factor(&self, tick: u64) -> f64 {
        if self.plan.pressure_rate > 0.0
            && self.u01(FaultSite::Pressure, tick, LANE_EVENT) < self.plan.pressure_rate
        {
            self.plan.pressure_floor
        } else {
            1.0
        }
    }
}

// ----------------------------------------------------------------- backoff

/// Total modeled delay charged for a transfer that took `attempts` attempts
/// with first-retry delay `base`: retry `k` waits `base * 2^(k-1)`, so the
/// sum over `attempts - 1` retries telescopes to
/// `base * (2^(attempts-1) - 1)`. Zero when the first attempt succeeded.
pub fn backoff_seconds(base: f64, attempts: u32) -> f64 {
    if attempts <= 1 || base <= 0.0 {
        return 0.0;
    }
    let retries = attempts - 1;
    base * ((1u64 << retries.min(62)) - 1) as f64
}

// ---------------------------------------------------------- integrity stats

/// Per-session integrity and recovery accounting, merged upward into
/// session reports exactly like the kvcache counter family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IntegrityStats {
    /// Corruptions the fault plan injected.
    pub corruptions_injected: u64,
    /// Corruptions a checksum verification caught.
    pub corruptions_detected: u64,
    /// Detected corruptions repaired from the pristine backing copy.
    pub corruptions_repaired: u64,
    /// Extra transfer attempts beyond the first (retransmits).
    pub transfer_retries: u64,
    /// Bytes moved by retransmits and repair re-fetches.
    pub retried_bytes: u64,
    /// Modeled backoff delay charged to the clock, in seconds.
    pub backoff_seconds: f64,
    /// Checksum verifications that passed (clean pages).
    pub verifications: u64,
}

impl IntegrityStats {
    /// New, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one injected corruption.
    pub fn record_injected(&mut self) {
        self.corruptions_injected += 1;
    }

    /// Record one checksum mismatch caught by verification.
    pub fn record_detected(&mut self) {
        self.corruptions_detected += 1;
    }

    /// Record one repair re-fetching `bytes` from backing.
    pub fn record_repaired(&mut self, bytes: u64) {
        self.corruptions_repaired += 1;
        self.retried_bytes += bytes;
    }

    /// Record a clean checksum verification.
    pub fn record_verified(&mut self) {
        self.verifications += 1;
    }

    /// Record `retries` retransmits re-moving `bytes`, waiting `backoff`
    /// modeled seconds in total.
    pub fn record_retries(&mut self, retries: u64, bytes: u64, backoff: f64) {
        self.transfer_retries += retries;
        self.retried_bytes += bytes;
        self.backoff_seconds += backoff;
    }

    /// Injected corruptions that no verification caught. The exp_faults
    /// gate requires this to be zero: every corruption is detected at its
    /// access site before anything could attend to damaged bytes.
    pub fn silent_corruptions(&self) -> u64 {
        self.corruptions_injected
            .saturating_sub(self.corruptions_detected)
    }

    /// Fraction of injected corruptions detected, in `[0, 1]`; `0.0` when
    /// nothing was injected (never NaN).
    pub fn detection_rate(&self) -> f64 {
        if self.corruptions_injected == 0 {
            0.0
        } else {
            self.corruptions_detected as f64 / self.corruptions_injected as f64
        }
    }

    /// Fraction of detected corruptions repaired, in `[0, 1]`; `0.0` when
    /// nothing was detected (never NaN).
    pub fn repair_rate(&self) -> f64 {
        if self.corruptions_detected == 0 {
            0.0
        } else {
            self.corruptions_repaired as f64 / self.corruptions_detected as f64
        }
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &IntegrityStats) {
        self.corruptions_injected += other.corruptions_injected;
        self.corruptions_detected += other.corruptions_detected;
        self.corruptions_repaired += other.corruptions_repaired;
        self.transfer_retries += other.transfer_retries;
        self.retried_bytes += other.retried_bytes;
        self.backoff_seconds += other.backoff_seconds;
        self.verifications += other.verifications;
    }
}

impl std::fmt::Display for IntegrityStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected={} detected={} repaired={} retries={} retried_bytes={} backoff={:.1}us",
            self.corruptions_injected,
            self.corruptions_detected,
            self.corruptions_repaired,
            self.transfer_retries,
            self.retried_bytes,
            self.backoff_seconds * 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_f32_commits_to_bit_patterns() {
        // 0.0 and -0.0 compare equal as floats but hash differently: the
        // checksum covers the stored representation, not float semantics.
        assert_ne!(fnv1a64_f32(&[0.0]), fnv1a64_f32(&[-0.0]));
        assert_eq!(fnv1a64_f32(&[1.5, -2.0]), fnv1a64_f32(&[1.5, -2.0]));
    }

    #[test]
    fn streaming_and_oneshot_agree() {
        let mut h = Fnv64::new();
        h.write_bytes(b"he");
        h.write_bytes(b"llo");
        assert_eq!(h.finish(), fnv1a64(b"hello"));
        let mut w = Fnv64::new();
        w.write_u64(0x0102_0304_0506_0708);
        assert_eq!(
            w.finish(),
            fnv1a64(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
    }

    #[test]
    fn disabled_plan_is_a_no_op() {
        let inj = FaultInjector::new(FaultPlan::disabled());
        assert!(!inj.enabled());
        for step in 0..200 {
            assert_eq!(inj.transfer_attempts(FaultSite::DemandRecall, step), 1);
            assert!(!inj.should_corrupt(FaultSite::Staging, step));
            assert!(!inj.should_crash(7, step));
            assert_eq!(inj.pressure_factor(step), 1.0);
        }
    }

    #[test]
    fn plan_validation_rejects_bad_fields() {
        assert!(FaultPlan::disabled().validate().is_ok());
        assert!(FaultPlan::uniform(1, 0.2).validate().is_ok());
        let mut p = FaultPlan::uniform(1, 0.2);
        p.corruption_rate = 1.0;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::uniform(1, 0.2);
        p.transfer_failure_rate = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::uniform(1, 0.2);
        p.pressure_floor = 0.0;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::uniform(1, 0.2);
        p.max_transfer_attempts = 0;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::uniform(1, 0.2);
        p.backoff_base = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultPlan::uniform(11, 0.3));
        let b = FaultInjector::new(FaultPlan::uniform(11, 0.3));
        let c = FaultInjector::new(FaultPlan::uniform(12, 0.3));
        let mut diverged = false;
        for step in 0..500 {
            assert_eq!(
                a.transfer_attempts(FaultSite::DemandRecall, step),
                b.transfer_attempts(FaultSite::DemandRecall, step)
            );
            assert_eq!(
                a.should_corrupt(FaultSite::PrefixAdoption, step),
                b.should_corrupt(FaultSite::PrefixAdoption, step)
            );
            if a.should_corrupt(FaultSite::PrefixAdoption, step)
                != c.should_corrupt(FaultSite::PrefixAdoption, step)
            {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must schedule different faults");
    }

    #[test]
    fn sites_draw_from_independent_streams() {
        let inj = FaultInjector::new(FaultPlan::uniform(5, 0.4));
        let mut differs = false;
        for step in 0..100 {
            if inj.should_corrupt(FaultSite::DemandRecall, step)
                != inj.should_corrupt(FaultSite::Staging, step)
            {
                differs = true;
                break;
            }
        }
        assert!(differs, "sites must not mirror each other's schedule");
    }

    #[test]
    fn attempts_respect_the_cap_and_the_rate() {
        let mut plan = FaultPlan::uniform(3, 0.6);
        plan.max_transfer_attempts = 3;
        let inj = FaultInjector::new(plan);
        let mut total = 0u64;
        let mut retried = 0u64;
        for step in 0..2000 {
            let a = inj.transfer_attempts(FaultSite::DemandRecall, step);
            assert!((1..=3).contains(&a));
            total += u64::from(a);
            if a > 1 {
                retried += 1;
            }
        }
        // At a 60% failure rate most transfers retry at least once.
        assert!(retried > 800, "retried only {retried} of 2000");
        assert!(total > 2000);
    }

    #[test]
    fn pressure_factor_is_floor_or_one() {
        let inj = FaultInjector::new(FaultPlan::uniform(9, 0.5));
        let mut events = 0;
        for tick in 0..1000 {
            let f = inj.pressure_factor(tick);
            assert!(f == 1.0 || f == 0.5, "factor {f}");
            if f < 1.0 {
                events += 1;
            }
        }
        assert!(events > 200, "only {events} pressure events at rate 0.5");
    }

    #[test]
    fn backoff_telescopes_exponentially() {
        assert_eq!(backoff_seconds(1e-3, 0), 0.0);
        assert_eq!(backoff_seconds(1e-3, 1), 0.0);
        assert_eq!(backoff_seconds(1e-3, 2), 1e-3);
        assert_eq!(backoff_seconds(1e-3, 3), 3e-3);
        assert_eq!(backoff_seconds(1e-3, 4), 7e-3);
        assert_eq!(backoff_seconds(0.0, 4), 0.0);
    }

    #[test]
    fn integrity_accessors_guard_empty_reports() {
        let s = IntegrityStats::new();
        assert_eq!(s.detection_rate(), 0.0);
        assert_eq!(s.repair_rate(), 0.0);
        assert_eq!(s.silent_corruptions(), 0);
        assert!(!s.detection_rate().is_nan());
        assert!(!s.repair_rate().is_nan());
    }

    #[test]
    fn integrity_stats_accumulate_merge_and_display() {
        let mut a = IntegrityStats::new();
        a.record_injected();
        a.record_detected();
        a.record_repaired(64);
        a.record_verified();
        a.record_retries(2, 128, 3e-3);
        let mut b = IntegrityStats::new();
        b.record_injected();
        a.merge(&b);
        assert_eq!(a.corruptions_injected, 2);
        assert_eq!(a.corruptions_detected, 1);
        assert_eq!(a.corruptions_repaired, 1);
        assert_eq!(a.silent_corruptions(), 1);
        assert_eq!(a.transfer_retries, 2);
        assert_eq!(a.retried_bytes, 192);
        assert_eq!(a.verifications, 1);
        assert!((a.backoff_seconds - 3e-3).abs() < 1e-12);
        assert_eq!(a.detection_rate(), 0.5);
        assert_eq!(a.repair_rate(), 1.0);
        assert!(a.to_string().contains("injected=2"));
    }

    proptest! {
        // The single-byte-flip guarantee: each FNV-1a step is a bijection
        // of the running state, so two equal-length streams differing in
        // exactly one byte can never collide.
        #[test]
        fn flipping_any_single_byte_changes_the_checksum(
            bytes in proptest::collection::vec(0u8..255, 1..256),
            idx in 0usize..4096,
            flip in 1u8..255,
        ) {
            let i = idx % bytes.len();
            let mut flipped = bytes.clone();
            flipped[i] ^= flip;
            prop_assert_ne!(fnv1a64(&bytes), fnv1a64(&flipped));
        }

        // Same guarantee through the f32 path (one mantissa/sign/exponent
        // bit anywhere in the page).
        #[test]
        fn flipping_any_f32_bit_changes_the_checksum(
            words in proptest::collection::vec(0u32..u32::MAX, 1..64),
            idx in 0usize..4096,
            bit in 0u32..32,
        ) {
            let values: Vec<f32> = words.iter().map(|&w| f32::from_bits(w)).collect();
            let i = idx % values.len();
            let mut flipped = words.clone();
            flipped[i] ^= 1 << bit;
            let flipped: Vec<f32> = flipped.iter().map(|&w| f32::from_bits(w)).collect();
            prop_assert_ne!(fnv1a64_f32(&values), fnv1a64_f32(&flipped));
        }

        // Pure-function property: any interleaving, repetition or ordering
        // of queries returns identical decisions.
        #[test]
        fn injector_queries_commute(
            seed in 0u64..u64::MAX,
            steps in proptest::collection::vec(0u64..u64::MAX, 1..32),
        ) {
            let inj = FaultInjector::new(FaultPlan::uniform(seed, 0.3));
            let forward: Vec<u32> = steps.iter()
                .map(|&s| inj.transfer_attempts(FaultSite::DemandRecall, s))
                .collect();
            let mut reversed: Vec<u32> = steps.iter().rev()
                .map(|&s| inj.transfer_attempts(FaultSite::DemandRecall, s))
                .collect();
            reversed.reverse();
            prop_assert_eq!(forward, reversed);
        }

        // Checksum round-trip: hashing is a pure function of the value
        // bits (re-hash == hash), the streaming hasher agrees with the
        // one-shot helper, and flipping any single bit of any element is
        // always detected. Single-bit detection is structural for FNV-1a:
        // a bit flip changes exactly one input byte, and for equal-length
        // inputs differing in one byte the folds diverge at that byte and
        // the odd-prime multiply keeps them apart.
        #[test]
        fn checksum_round_trips_and_detects_any_single_bit_flip(
            values in proptest::collection::vec(-1000.0f32..1000.0, 1..64),
            index in 0usize..64,
            bit in 0u32..32,
        ) {
            let sealed = fnv1a64_f32(&values);
            // Round-trip: re-hashing the same bits reproduces the digest.
            prop_assert_eq!(sealed, fnv1a64_f32(&values));
            // Streaming == one-shot.
            let mut h = Fnv64::new();
            for v in &values {
                h.write_f32s(&[*v]);
            }
            prop_assert_eq!(h.finish(), sealed);
            // A single flipped bit must always change the checksum.
            let mut damaged = values.clone();
            let i = index % damaged.len();
            damaged[i] = f32::from_bits(damaged[i].to_bits() ^ (1 << bit));
            prop_assert_ne!(fnv1a64_f32(&damaged), sealed);
        }
    }
}
