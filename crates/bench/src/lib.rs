//! Shared pieces of the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (each binary's module docs name its experiment). This library provides
//! the method enumeration and the per-episode evaluation loop they share.

#![warn(missing_docs)]

use clusterkv::{ClusterKvConfig, ClusterKvFactory, DistanceMetric};
use clusterkv_baselines::{InfiniGenFactory, QuestFactory};
use clusterkv_kvcache::types::Budget;
use clusterkv_model::policy::{FullAttentionFactory, HeadContext, SelectorFactory};
use clusterkv_workloads::{run_budget_sweep, run_episode, Episode, EpisodeResult};
use serde::{Deserialize, Serialize};

/// The methods compared in the paper's accuracy figures (Fig. 9, 10, 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Quest page-granular recall.
    Quest,
    /// InfiniGen partial-key per-token recall.
    InfiniGen,
    /// ClusterKV semantic-cluster recall (this paper).
    ClusterKv,
    /// Exact attention over the full KV cache.
    FullKv,
}

impl Method {
    /// The four methods in the order the paper's legends use.
    pub fn all() -> [Method; 4] {
        [
            Method::Quest,
            Method::InfiniGen,
            Method::ClusterKv,
            Method::FullKv,
        ]
    }

    /// The three compressed methods (everything except Full KV).
    pub fn compressed() -> [Method; 3] {
        [Method::Quest, Method::InfiniGen, Method::ClusterKv]
    }

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Method::Quest => "Quest",
            Method::InfiniGen => "InfiniGen",
            Method::ClusterKv => "ClusterKV",
            Method::FullKv => "Full KV",
        }
    }

    /// Build the selector factory for this method.
    pub fn factory(self) -> Box<dyn SelectorFactory> {
        match self {
            Method::Quest => Box::new(QuestFactory::default()),
            Method::InfiniGen => Box::new(InfiniGenFactory::default()),
            Method::ClusterKv => Box::new(ClusterKvFactory::default()),
            Method::FullKv => Box::new(FullAttentionFactory),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Evaluate one method on one episode at one budget.
pub fn evaluate(method: Method, episode: &Episode, budget: usize) -> EpisodeResult {
    let factory = method.factory();
    let mut selector = factory.create(HeadContext {
        layer: 2,
        head: 0,
        head_dim: episode.config.head_dim,
    });
    run_episode(episode, selector.as_mut(), Budget::new(budget))
}

/// Evaluate one method at every budget of a sweep, budgets fanned out across
/// the thread pool (`RAYON_NUM_THREADS`); results come back in budget order,
/// identical to [`evaluate`] per budget.
pub fn evaluate_sweep(method: Method, episode: &Episode, budgets: &[usize]) -> Vec<EpisodeResult> {
    let factory = method.factory();
    run_budget_sweep(
        episode,
        factory.as_ref(),
        HeadContext {
            layer: 2,
            head: 0,
            head_dim: episode.config.head_dim,
        },
        budgets,
    )
}

/// Evaluate a ClusterKV variant (custom configuration) on one episode — used
/// by the Fig. 11b ablation over distance metrics and cluster counts.
pub fn evaluate_clusterkv_variant(
    config: ClusterKvConfig,
    episode: &Episode,
    budget: usize,
) -> EpisodeResult {
    let factory = ClusterKvFactory::new(config);
    let mut selector = factory.create(HeadContext {
        layer: 2,
        head: 0,
        head_dim: episode.config.head_dim,
    });
    run_episode(episode, selector.as_mut(), Budget::new(budget))
}

/// ClusterKV configuration with a specific distance metric and target number
/// of prefill clusters `C0` for a given context length (the Fig. 11b knobs).
pub fn clusterkv_config_for_ablation(
    metric: DistanceMetric,
    c0: usize,
    context_len: usize,
) -> ClusterKvConfig {
    let tokens_per_cluster = (context_len / c0.max(1)).max(1);
    ClusterKvConfig::default()
        .with_distance(metric)
        .with_tokens_per_cluster(tokens_per_cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_workloads::EpisodeConfig;

    fn tiny_episode() -> Episode {
        Episode::generate(
            EpisodeConfig::default()
                .with_context_len(256)
                .with_decode_steps(8)
                .with_num_topics(8)
                .with_seed(5),
        )
    }

    #[test]
    fn all_methods_evaluate() {
        let e = tiny_episode();
        for m in Method::all() {
            let r = evaluate(m, &e, 64);
            assert_eq!(r.per_step_recall.len(), 8, "{m}");
            assert!(r.mean_recall() > 0.0, "{m}");
        }
        assert_eq!(Method::compressed().len(), 3);
        assert_eq!(Method::ClusterKv.to_string(), "ClusterKV");
    }

    #[test]
    fn full_kv_dominates_compressed_methods_in_recall() {
        let e = tiny_episode();
        let full = evaluate(Method::FullKv, &e, 64);
        assert!((full.mean_recall() - 1.0).abs() < 1e-9);
        for m in Method::compressed() {
            let r = evaluate(m, &e, 64);
            assert!(r.mean_recall() <= 1.0 + 1e-9, "{m}");
        }
    }

    #[test]
    fn clusterkv_beats_quest_in_recall_on_topical_context() {
        let e = tiny_episode();
        let ckv = evaluate(Method::ClusterKv, &e, 64);
        let quest = evaluate(Method::Quest, &e, 64);
        assert!(
            ckv.mean_recall() > quest.mean_recall(),
            "ClusterKV {:.3} vs Quest {:.3}",
            ckv.mean_recall(),
            quest.mean_recall()
        );
    }

    #[test]
    fn ablation_config_produces_requested_cluster_count() {
        let cfg = clusterkv_config_for_ablation(DistanceMetric::L2, 400, 32_000);
        assert_eq!(cfg.distance, DistanceMetric::L2);
        let c0 = cfg.prefill_clusters(32_000);
        assert!((380..=440).contains(&c0), "C0 = {c0}");
    }

    #[test]
    fn ablation_variant_evaluates() {
        let e = tiny_episode();
        let cfg = clusterkv_config_for_ablation(DistanceMetric::Cosine, 16, 256);
        let r = evaluate_clusterkv_variant(cfg, &e, 64);
        assert_eq!(r.per_step_recall.len(), 8);
    }
}
