//! Experiments E8/E12 — Fig. 12 of the paper.
//!
//! End-to-end inference latency of ClusterKV versus the full-KV configuration
//! for prompt lengths of 8k/16k/32k, decode lengths of 256/512/1024 and
//! budgets of 512/1024/2048, including the prefill breakdown and the
//! clustering overhead (§V-C: 6–8 % of prefill).
//!
//! The per-step PCIe recall traffic is *measured* by running each budget's
//! selection against the tiered cluster cache on an 8k-context episode
//! (R = 1 equivalent capacity), instead of assuming a uniform hit rate.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin fig12_latency`

use clusterkv::{ClusterCache, ClusterCacheConfig, ClusterKvConfig, ClusterKvFactory};
use clusterkv_kvcache::types::Budget;
use clusterkv_kvcache::DeviceModel;
use clusterkv_metrics::{fmt, Table};
use clusterkv_model::latency::StepCost;
use clusterkv_model::policy::{HeadContext, SelectorFactory};
use clusterkv_model::{LatencyModel, ModelPreset};
use clusterkv_workloads::{run_episode_cached, Episode, EpisodeConfig};

const PROMPTS: [usize; 3] = [8_192, 16_384, 32_768];
const DECODES: [usize; 3] = [256, 512, 1024];
const BUDGETS: [usize; 3] = [512, 1024, 2048];
const MEASURE_CONTEXT: usize = 8_192;
const MEASURE_STEPS: usize = 64;

/// Measured cluster-cache behaviour of one budget: (token hit rate,
/// recalled tokens per step) on the reference episode.
fn measured_recall(episode: &Episode, budget: usize) -> (f64, f64) {
    let config = ClusterKvConfig::default();
    let factory = ClusterKvFactory::new(config);
    let mut selector = factory.create(HeadContext {
        layer: 2,
        head: 0,
        head_dim: episode.config.head_dim,
    });
    let mut cache = ClusterCache::new(ClusterCacheConfig::for_recency_window(
        1,
        budget + config.tokens_per_cluster,
        episode.config.head_dim,
    ));
    let result = run_episode_cached(episode, selector.as_mut(), Budget::new(budget), &mut cache);
    (
        result.stats.cache.hit_rate(),
        result.stats.transfer.tokens_moved as f64 / MEASURE_STEPS as f64,
    )
}

fn clusterkv_cost(budget: usize, transferred_per_step: f64) -> impl Fn(usize) -> StepCost {
    move |context_len: usize| StepCost {
        // Centroids scored per head: C0 = L/80 plus C+ clusters added during
        // decoding (4 every 320 steps — negligible next to C0).
        scored_vectors_per_head: (context_len as f64 / 80.0).max(1.0),
        attended_tokens: budget as f64,
        transferred_tokens_per_head: transferred_per_step,
        transferred_compressed_bytes: 0.0,
        staged_transfer_bytes: 0.0,
        retried_transfer_bytes: 0.0,
        retry_backoff_seconds: 0.0,
    }
}

fn main() {
    let model = LatencyModel::new(ModelPreset::Llama31_8b.config(), DeviceModel::ada6000());
    let episode = Episode::generate(
        EpisodeConfig::default()
            .with_context_len(MEASURE_CONTEXT)
            .with_decode_steps(MEASURE_STEPS)
            .with_num_topics(40)
            .with_seed(0xF16),
    );
    let recall: Vec<(f64, f64)> = BUDGETS
        .iter()
        .map(|&b| measured_recall(&episode, b))
        .collect();
    println!(
        "# Fig. 12 — latency vs full KV ({} on analytical Ada-6000 device model)\n",
        ModelPreset::Llama31_8b
    );
    for (&b, &(hit, per_step)) in BUDGETS.iter().zip(&recall) {
        println!(
            "measured cluster-cache recall at B={b}: hit rate {:.1}%, {} tokens/step",
            hit * 100.0,
            fmt(per_step, 0)
        );
    }
    println!();

    let mut table = Table::new(vec![
        "P",
        "D",
        "Full KV (s)",
        "B=512 (s)",
        "B=1024 (s)",
        "B=2048 (s)",
        "Speedup @1024",
        "Thpt gain @1024",
    ]);
    for &p in &PROMPTS {
        for &d in &DECODES {
            let full = model.run(p, d, None, StepCost::full_kv);
            let mut budget_totals = Vec::new();
            let mut at_1024 = None;
            for (&b, &(_, per_step)) in BUDGETS.iter().zip(&recall) {
                let r = model.run(p, d, Some((p / 80, 10)), clusterkv_cost(b, per_step));
                budget_totals.push(r.total.get());
                if b == 1024 {
                    at_1024 = Some(r);
                }
            }
            let at_1024 = at_1024.expect("1024 is in BUDGETS");
            table.row(vec![
                format!("{}k", p / 1024),
                d.to_string(),
                fmt(full.total.get(), 2),
                fmt(budget_totals[0], 2),
                fmt(budget_totals[1], 2),
                fmt(budget_totals[2], 2),
                format!("{}x", fmt(full.total.get() / at_1024.total.get(), 2)),
                format!(
                    "{}x",
                    fmt(at_1024.decode_throughput / full.decode_throughput, 2)
                ),
            ]);
        }
    }
    println!("{}", table.render());

    println!("# Prefill breakdown (clustering overhead, §V-C)\n");
    let mut table = Table::new(vec![
        "P",
        "Prefill base (s)",
        "Clustering (s)",
        "Clustering / prefill",
    ]);
    for &p in &PROMPTS {
        let bd = model.prefill_breakdown(p, Some((p / 80, 10)));
        table.row(vec![
            format!("{}k", p / 1024),
            fmt(bd.base.get(), 2),
            fmt(bd.clustering.get(), 3),
            format!("{:.1}%", bd.clustering_fraction() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper reference: up to 2x end-to-end speedup and 2.5x decoding-throughput gain at \
         P=32k, D=1024 with a 1024-token budget; clustering is 6-8% of prefill."
    );
}
