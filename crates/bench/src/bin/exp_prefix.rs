//! Experiment E14 — cross-session KV prefix sharing (DESIGN.md §8).
//!
//! Serving traffic is rarely cold: agents, RAG pipelines, and chat UIs all
//! replay long shared system prompts. This experiment puts the workspace
//! [`PrefixStore`](clusterkv_kvcache::prefix::PrefixStore) under templated
//! traffic (`N` templates × `M` users) and asserts the four properties the
//! design promises, rather than assuming them:
//!
//! * **Parity** — per-session token streams are byte-identical with the
//!   store enabled vs disabled, at every prefill chunking and every thread
//!   count swept. Sharing decides *what is recomputed*, never *what is
//!   generated*.
//! * **Prefill speedup** — for a 90 %-shared workload, the computed prompt
//!   tokens (the prefill FLOPs proxy) and the modeled prefill latency both
//!   improve by at least 2x over the cold run, and modeled mean TTFT
//!   strictly improves. The 2x gate targets the prefill component sharing
//!   actually removes: at bench scale the analytical device model's fixed
//!   kernel overheads put an identical ~tens-of-µs decode floor under the
//!   TTFT of *both* runs, so full-TTFT ratios understate the effect that
//!   dominates at production scale (where prefill is the bulk of TTFT).
//! * **Admission capacity** — under a fixed KV admission budget, the peak
//!   number of concurrently running sessions grows with the shared
//!   fraction, because the scheduler only reserves private (unshared)
//!   bytes per request.
//! * **Determinism** — a repeated store-enabled run reproduces the serving
//!   report and the store statistics bit for bit.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin exp_prefix`
//! (set `EXP_PREFIX_SMOKE=1` for the CI-sized trace, `--json` for the
//! machine-readable summary).

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_kvcache::prefix::PrefixStoreStats;
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_metrics::{fmt, LatencySummary, Table};
use clusterkv_model::{ModelConfig, ServeEngine};
use clusterkv_sched::{SchedConfig, Scheduler, ServingReport};
use clusterkv_workloads::{generate_traffic, TrafficConfig};

const SEED: u64 = 0xE14;
const BUDGET: usize = 48;
/// Gate: modeled prefill latency must improve by at least this factor on
/// the 90 %-shared workload.
const PREFILL_FLOOR: f64 = 2.0;
/// Gate: computed prompt tokens (prefill FLOPs proxy) must drop to at most
/// this fraction of the cold run on the 90 %-shared workload.
const COMPUTE_CEILING: f64 = 0.5;

fn smoke() -> bool {
    std::env::var("EXP_PREFIX_SMOKE").is_ok()
}

fn model_config() -> ModelConfig {
    ModelConfig {
        num_layers: 3,
        num_heads: 4,
        num_kv_heads: 2,
        head_dim: 16,
        ffn_dim: 64,
        vocab_size: 256,
        max_context: 1024,
        dense_layers: 1,
    }
}

/// Workload scale: `requests` users over `templates` shared prompt
/// templates, each prompt exactly `prompt_len` tokens with `shared_len` of
/// them drawn from the template.
#[derive(Clone, Copy)]
struct Scale {
    requests: usize,
    prompt_len: usize,
    templates: usize,
    shared_len: usize,
    output_len: usize,
    decode_steps: usize,
}

fn scale() -> Scale {
    if smoke() {
        Scale {
            requests: 12,
            prompt_len: 80,
            templates: 2,
            shared_len: 72,
            output_len: 4,
            decode_steps: 6,
        }
    } else {
        Scale {
            requests: 36,
            prompt_len: 160,
            templates: 4,
            shared_len: 144,
            output_len: 4,
            decode_steps: 8,
        }
    }
}

fn engine(store: bool) -> ServeEngine {
    let factory = ClusterKvFactory::new(
        ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(16)
            .with_decode_cluster_period(8)
            .with_decode_new_clusters(2),
    );
    let mut builder = ServeEngine::builder(model_config())
        .synthetic_weights(SEED)
        .budget(Budget::new(BUDGET))
        .policy(Box::new(factory))
        .kv_cache_capacity(Bytes(1 << 17));
    if store {
        builder = builder.prefix_store(Bytes(8 << 20));
    }
    builder.build().expect("valid serving config")
}

/// Run `body` with `RAYON_NUM_THREADS` pinned to `threads`, restoring the
/// previous value afterwards (the rayon shim re-reads the variable at every
/// parallel region, so this takes effect immediately).
fn with_threads<T>(threads: usize, body: impl FnOnce() -> T) -> T {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let out = body();
    match saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

/// Deterministic parity prompts: three users over one shared template plus
/// one unrelated prompt, so a single run exercises hit, divergence, and
/// miss paths of the store.
fn parity_prompts(vocab: usize) -> Vec<Vec<usize>> {
    let template: Vec<usize> = (0..48).map(|t| (t * 7 + 13) % vocab).collect();
    let mut prompts: Vec<Vec<usize>> = (0..3)
        .map(|user| {
            let mut p = template.clone();
            p.extend((0..12).map(|t| (t * 11 + 31 * (user + 1)) % vocab));
            p
        })
        .collect();
    prompts.push((0..32).map(|t| (t * 17 + 5) % vocab).collect());
    prompts
}

/// Serve `prompts` one session at a time on a fresh engine: prefill
/// (monolithic when `chunk == 0`, otherwise in `chunk`-token pieces), then
/// decode `steps` tokens. Sessions are created in order and kept alive, so
/// later sessions can reuse what earlier ones donated to the store.
fn run_parity(store: bool, chunk: usize, steps: usize) -> (Vec<Vec<usize>>, u64) {
    let mut eng = engine(store);
    let mut streams = Vec::new();
    for prompt in parity_prompts(model_config().vocab_size) {
        let session = eng.create_session().expect("session slot");
        if chunk == 0 {
            eng.prefill(session, &prompt).expect("prefill");
        } else {
            for piece in prompt.chunks(chunk) {
                eng.prefill_chunk(session, piece).expect("prefill chunk");
            }
            eng.finish_prefill(session).expect("finish prefill");
        }
        let mut stream = Vec::with_capacity(steps);
        for _ in 0..steps {
            stream.push(eng.decode_batch(&[session]).expect("decode")[0].next_token);
        }
        streams.push(stream);
    }
    let hits = eng.prefix_store_stats().map_or(0, |s| s.hit_tokens);
    (streams, hits)
}

/// One scheduler run over templated traffic. `shared_len == 0` disables the
/// templates entirely (a cold trace with identical arrivals and lengths).
fn serve(
    store: bool,
    shared_len: usize,
    kv_admission: Option<Bytes>,
    rate: f64,
    s: Scale,
) -> (ServingReport, usize, Option<PrefixStoreStats>) {
    let cfg = model_config();
    let mut traffic_cfg = TrafficConfig::new(s.requests, rate, cfg.vocab_size)
        .with_prompt_len(s.prompt_len, s.prompt_len)
        .with_output_len(s.output_len, s.output_len)
        .with_seed(SEED);
    if shared_len > 0 {
        traffic_cfg = traffic_cfg.with_prefix_templates(s.templates, shared_len, shared_len);
    }
    let traffic = generate_traffic(&traffic_cfg);
    let mut sched_cfg = SchedConfig::fcfs(8)
        .with_chunk_tokens(64)
        .with_tick_token_budget(256);
    if let Some(capacity) = kv_admission {
        sched_cfg = sched_cfg.with_kv_capacity(capacity);
    }
    let mut sched = Scheduler::new(engine(store), sched_cfg).expect("valid scheduler config");
    sched.submit_all(traffic).expect("trace is servable");
    let mut peak_running = 0;
    while !sched.is_idle() {
        sched.tick().expect("tick");
        peak_running = peak_running.max(sched.num_running());
    }
    let stats = sched.engine().prefix_store_stats();
    (sched.report(), peak_running, stats)
}

/// Prompt tokens actually charged to compute: everything the store did not
/// serve from shared pages.
fn computed_prompt_tokens(report: &ServingReport) -> usize {
    report
        .requests
        .iter()
        .map(|r| r.prompt_len - r.shared_prefix_tokens)
        .sum()
}

/// Total modeled prefill latency across the report, priced exactly like the
/// scheduler prices chunks: a request whose first `shared` positions came
/// from the store is charged `prefill(len) - prefill(len - computed)`, which
/// telescopes to the full `prefill(len)` when nothing was shared.
fn modeled_prefill_time(report: &ServingReport, lm: &clusterkv_model::LatencyModel) -> f64 {
    report
        .requests
        .iter()
        .map(|r| {
            let computed = r.prompt_len - r.shared_prefix_tokens;
            let tail = if computed == r.prompt_len {
                0.0
            } else {
                lm.prefill(r.prompt_len - computed).get()
            };
            lm.prefill(r.prompt_len).get() - tail
        })
        .sum()
}

struct JsonSummary {
    parity_cells: usize,
    prefill_cold_ms: f64,
    prefill_shared_ms: f64,
    prefill_speedup: f64,
    ttft_cold_ms: f64,
    ttft_shared_ms: f64,
    ttft_speedup: f64,
    computed_cold: usize,
    computed_shared: usize,
    capacity: Vec<(usize, usize)>,
    shared_bytes: u64,
    store_nodes: usize,
}

fn emit_json(s: Scale, j: &JsonSummary) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"exp_prefix\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", smoke()));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        rayon::current_num_threads()
    ));
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"requests\": {},\n", s.requests));
    out.push_str(&format!("    \"prompt_len\": {},\n", s.prompt_len));
    out.push_str(&format!("    \"templates\": {},\n", s.templates));
    out.push_str(&format!("    \"shared_len\": {},\n", s.shared_len));
    out.push_str(&format!("    \"output_len\": {},\n", s.output_len));
    out.push_str(&format!("    \"decode_steps\": {}\n", s.decode_steps));
    out.push_str("  },\n");
    out.push_str(&format!("  \"parity_cells\": {},\n", j.parity_cells));
    out.push_str(&format!(
        "  \"prefill_cold_ms\": {:.6},\n",
        j.prefill_cold_ms
    ));
    out.push_str(&format!(
        "  \"prefill_shared_ms\": {:.6},\n",
        j.prefill_shared_ms
    ));
    out.push_str(&format!(
        "  \"prefill_speedup\": {:.4},\n",
        j.prefill_speedup
    ));
    out.push_str(&format!("  \"ttft_cold_ms\": {:.6},\n", j.ttft_cold_ms));
    out.push_str(&format!("  \"ttft_shared_ms\": {:.6},\n", j.ttft_shared_ms));
    out.push_str(&format!("  \"ttft_speedup\": {:.4},\n", j.ttft_speedup));
    out.push_str(&format!(
        "  \"computed_prompt_tokens\": {{\"cold\": {}, \"shared\": {}}},\n",
        j.computed_cold, j.computed_shared
    ));
    out.push_str("  \"admission_peak_running\": {");
    for (i, (shared_len, peak)) in j.capacity.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{shared_len}\": {peak}"));
    }
    out.push_str("},\n");
    out.push_str(&format!("  \"store_shared_bytes\": {},\n", j.shared_bytes));
    out.push_str(&format!("  \"store_nodes\": {},\n", j.store_nodes));
    out.push_str("  \"deterministic\": true\n");
    out.push_str("}\n");
    print!("{out}");
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let s = scale();
    let bytes_per_token = model_config().kv_bytes_per_token();

    if !json {
        println!("# Cross-session KV prefix sharing — parity, speedup, admission capacity\n");
        println!(
            "model: {} layers x {} heads; {} requests x {} prompt tokens, \
             {} templates x {} shared tokens{}\n",
            model_config().num_layers,
            model_config().num_heads,
            s.requests,
            s.prompt_len,
            s.templates,
            s.shared_len,
            if smoke() { " (smoke scale)" } else { "" },
        );
    }

    // ---- Gate (a): byte-identical streams, store on/off, at every
    // chunking and thread count swept. Reference: store off, monolithic
    // prefill, one thread.
    let (reference, _) = with_threads(1, || run_parity(false, 0, s.decode_steps));
    let chunkings = [0usize, 7, 16];
    let threads = [1usize, 2, 8];
    let mut parity_cells = 0;
    for &store in &[false, true] {
        for &chunk in &chunkings {
            for &t in &threads {
                let (streams, hits) = with_threads(t, || run_parity(store, chunk, s.decode_steps));
                assert_eq!(
                    streams, reference,
                    "token streams diverged (store={store}, chunk={chunk}, threads={t})"
                );
                if store && chunk != 0 {
                    assert!(
                        hits > 0,
                        "store enabled but no prefix hits (chunk={chunk}, threads={t})"
                    );
                }
                parity_cells += 1;
            }
        }
    }
    if !json {
        println!(
            "Parity: {} cells (store on/off x chunkings {:?} x threads {:?}) \
             all byte-identical to the cold monolithic single-thread run.\n",
            parity_cells, chunkings, threads
        );
    }

    // ---- Gate (b): prefill compute and modeled TTFT on the 90 %-shared
    // workload, store on vs off over the identical trace.
    let (cold_report, _, _) = serve(false, s.shared_len, None, 5_000.0, s);
    let (shared_report, _, shared_stats) = serve(true, s.shared_len, None, 5_000.0, s);
    let cold_streams: Vec<&[usize]> = cold_report.requests.iter().map(|r| &r.tokens[..]).collect();
    let shared_streams: Vec<&[usize]> = shared_report
        .requests
        .iter()
        .map(|r| &r.tokens[..])
        .collect();
    assert_eq!(
        cold_streams, shared_streams,
        "prefix store changed generated tokens under the scheduler"
    );
    let computed_cold = computed_prompt_tokens(&cold_report);
    let computed_shared = computed_prompt_tokens(&shared_report);
    assert!(
        (computed_shared as f64) <= COMPUTE_CEILING * computed_cold as f64,
        "shared workload must compute at most {COMPUTE_CEILING}x of cold \
         prompt tokens: {computed_shared} vs {computed_cold}"
    );
    let lm = engine(false).latency_model().clone();
    let prefill_cold = modeled_prefill_time(&cold_report, &lm);
    let prefill_shared = modeled_prefill_time(&shared_report, &lm);
    let prefill_speedup = prefill_cold / prefill_shared;
    assert!(
        prefill_speedup >= PREFILL_FLOOR,
        "prefix sharing must cut modeled prefill latency by at least \
         {PREFILL_FLOOR}x: {prefill_cold:.6} s vs {prefill_shared:.6} s \
         ({prefill_speedup:.2}x)"
    );
    let ttft_cold = LatencySummary::from_values(&cold_report.ttfts());
    let ttft_shared = LatencySummary::from_values(&shared_report.ttfts());
    let speedup = ttft_cold.mean / ttft_shared.mean;
    assert!(
        speedup > 1.0,
        "prefix sharing must strictly improve modeled mean TTFT: \
         {:.6} s vs {:.6} s",
        ttft_cold.mean,
        ttft_shared.mean
    );
    let stats = shared_stats.expect("store-enabled run has stats");
    assert!(stats.hit_tokens > 0, "templated trace must hit the store");
    if !json {
        let mut table = Table::new(vec![
            "Run",
            "Computed prompt tok",
            "TTFT mean (ms)",
            "TTFT p95 (ms)",
            "E2E p95 (ms)",
        ]);
        for (name, report, computed) in [
            ("cold", &cold_report, computed_cold),
            ("shared", &shared_report, computed_shared),
        ] {
            let ttft = LatencySummary::from_values(&report.ttfts());
            let e2e = LatencySummary::from_values(&report.e2es());
            table.row(vec![
                name.to_string(),
                format!("{computed}"),
                fmt(ttft.mean * 1e3, 2),
                fmt(ttft.p95 * 1e3, 2),
                fmt(e2e.p95 * 1e3, 2),
            ]);
        }
        println!("{}", table.render());
        println!(
            "Speedup: {prefill_speedup:.2}x modeled prefill latency, \
             {speedup:.2}x mean TTFT; computed prompt tokens \
             {computed_shared}/{computed_cold} ({:.0}%); store holds {} \
             nodes / {} shared bytes.\n",
            100.0 * computed_shared as f64 / computed_cold as f64,
            stats.nodes,
            stats.shared_bytes.get()
        );
    }

    // ---- Gate (c): admission capacity grows with the shared fraction
    // under a KV budget sized for exactly two cold requests.
    let kv_capacity = Bytes(2 * (s.prompt_len + s.output_len) as u64 * bytes_per_token);
    let fractions = [s.prompt_len / 20, s.prompt_len / 2, s.shared_len];
    let mut peaks = Vec::new();
    // A burst trace (everything arrives within a few ticks) makes the KV
    // budget the binding constraint, so peak concurrency measures exactly
    // how far the discounted reservations stretch it.
    for &shared_len in &fractions {
        let (report, peak, _) = serve(true, shared_len, Some(kv_capacity), 1_000_000.0, s);
        assert_eq!(report.requests.len(), s.requests, "all requests served");
        peaks.push((shared_len, peak));
    }
    assert!(
        peaks.windows(2).all(|w| w[0].1 < w[1].1),
        "peak concurrency must grow strictly with the shared fraction: {peaks:?}"
    );
    if !json {
        let mut table = Table::new(vec!["Shared tokens", "Shared fraction", "Peak running"]);
        for &(shared_len, peak) in &peaks {
            table.row(vec![
                format!("{shared_len}"),
                fmt(shared_len as f64 / s.prompt_len as f64, 2),
                format!("{peak}"),
            ]);
        }
        println!("{}", table.render());
        println!(
            "Admission: KV budget fits 2 cold requests; concurrency grows \
             {} -> {} as the shared fraction rises.\n",
            peaks.first().unwrap().1,
            peaks.last().unwrap().1
        );
    }

    // ---- Gate (d): bit-identical repeat of the store-enabled run.
    let (repeat_report, _, repeat_stats) = serve(true, s.shared_len, None, 5_000.0, s);
    assert_eq!(
        shared_report, repeat_report,
        "repeated store-enabled runs must produce bit-identical reports"
    );
    assert_eq!(
        stats,
        repeat_stats.expect("repeat run has stats"),
        "repeated store-enabled runs must produce bit-identical store stats"
    );
    if !json {
        println!(
            "Determinism: repeated shared run reproduced {} generated \
             tokens and makespan {} bit for bit.",
            repeat_report.total_generated, repeat_report.makespan
        );
    }

    if json {
        emit_json(
            s,
            &JsonSummary {
                parity_cells,
                prefill_cold_ms: prefill_cold * 1e3,
                prefill_shared_ms: prefill_shared * 1e3,
                prefill_speedup,
                ttft_cold_ms: ttft_cold.mean * 1e3,
                ttft_shared_ms: ttft_shared.mean * 1e3,
                ttft_speedup: speedup,
                computed_cold,
                computed_shared,
                capacity: peaks,
                shared_bytes: stats.shared_bytes.get(),
                store_nodes: stats.nodes,
            },
        );
    }
}
