//! Experiment E5 — Fig. 10 of the paper.
//!
//! Language-modelling perplexity (PG19-style proxy) versus input length with
//! a KV budget of 1024 tokens for Quest, InfiniGen, ClusterKV and Full KV.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin fig10_perplexity`

use clusterkv_bench::{evaluate, Method};
use clusterkv_metrics::{fmt, Series, Table};
use clusterkv_workloads::{perplexity_proxy, Episode, EpisodeConfig};

const BUDGET: usize = 1024;
const INPUT_LENGTHS: [usize; 5] = [1024, 2048, 4096, 8192, 16384];

fn main() {
    println!("# Fig. 10 — perplexity vs input length (budget {BUDGET})\n");
    let mut table = Table::new(vec![
        "Input length",
        "Quest",
        "InfiniGen",
        "ClusterKV",
        "Full KV",
    ]);
    let mut series: Vec<Series> = Method::all()
        .iter()
        .map(|m| Series::new(m.name()))
        .collect();

    for &len in &INPUT_LENGTHS {
        let episode = Episode::generate(
            EpisodeConfig::default()
                .with_context_len(len)
                .with_decode_steps(32)
                .with_num_topics((len / 160).max(8))
                .with_seed(0x1010 + len as u64),
        );
        let mut cells = vec![len.to_string()];
        for (i, method) in Method::all().iter().enumerate() {
            let result = evaluate(*method, &episode, BUDGET);
            let ppl = perplexity_proxy(&result);
            cells.push(fmt(ppl, 2));
            series[i].push(len as f64, ppl);
        }
        // Reorder cells to the table's column order (Quest, InfiniGen,
        // ClusterKV, Full KV) — Method::all() already matches it.
        table.row(cells);
    }
    println!("{}", table.render());

    for s in &series {
        println!("series {}", s.to_json());
    }
    println!(
        "\nPaper reference: Full KV ~10-11 across lengths; ClusterKV deviates by up to 0.5, \
         InfiniGen by ~2 and Quest by ~4 at long inputs."
    );
}
