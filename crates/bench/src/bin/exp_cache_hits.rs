//! Experiment E11 — §V-C "Effectiveness of caching".
//!
//! Drives the tiered cluster cache (`clusterkv_kvcache::cluster_cache`) with
//! a NarrativeQA-style episode and measures, instead of assuming:
//!
//! 1. the token-level hit rate at capacities equivalent to the paper's
//!    recency windows R = 1 and R = 2, and the decoding-throughput gain the
//!    cache buys over recalling every selected cluster from CPU memory;
//! 2. the hit rate as a function of GPU cache capacity — non-decreasing in
//!    capacity and exactly 100 % once the cache holds the full KV (nothing
//!    is ever offloaded, so nothing is ever recalled);
//! 3. the cluster reuse-distance (LRU stack distance) histogram of the
//!    episode's page requests — the workload property that *explains* the
//!    capacity curve: an LRU cache holding `D` clusters hits exactly the
//!    accesses with stack distance < `D`, so the cumulative histogram is
//!    the predicted hit-rate-vs-capacity curve;
//! 4. the incremental-clustering period `m` ablation.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin exp_cache_hits`
//! (`--json` prints the machine-readable summary, histogram included).

use clusterkv::{ClusterCache, ClusterCacheConfig, ClusterKvConfig, ClusterKvFactory};
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_kvcache::DeviceModel;
use clusterkv_metrics::{fmt, Table};
use clusterkv_model::latency::StepCost;
use clusterkv_model::policy::{HeadContext, SelectorFactory};
use clusterkv_model::{LatencyModel, ModelPreset};
use clusterkv_workloads::{run_episode_cached, Episode, EpisodeConfig, EpisodeResult};

const BUDGET: usize = 1024;
const CONTEXT_LEN: usize = 8192;
const DECODE_STEPS: usize = 64;

/// Run one ClusterKV head over the episode against a cache of the given
/// capacity, returning the measured episode result (hit rate, recalled
/// tokens, selection work).
fn run_with_capacity(config: ClusterKvConfig, episode: &Episode, capacity: Bytes) -> EpisodeResult {
    let factory = ClusterKvFactory::new(config);
    let mut selector = factory.create(HeadContext {
        layer: 2,
        head: 0,
        head_dim: episode.config.head_dim,
    });
    let mut cache = ClusterCache::new(ClusterCacheConfig::new(capacity, episode.config.head_dim));
    run_episode_cached(episode, selector.as_mut(), Budget::new(BUDGET), &mut cache)
}

/// Capacity equivalent to the paper's recency window `R`: room for `R`
/// steps of selected clusters (budget plus one trimmed cluster of slack).
fn r_equivalent_capacity(r: usize, config: &ClusterKvConfig, head_dim: usize) -> Bytes {
    ClusterCacheConfig::for_recency_window(r, BUDGET + config.tokens_per_cluster, head_dim)
        .gpu_capacity
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let episode = Episode::generate(
        EpisodeConfig::default()
            .with_context_len(CONTEXT_LEN)
            .with_decode_steps(DECODE_STEPS)
            .with_num_topics(40)
            .with_seed(0xCAC4E),
    );
    let head_dim = episode.config.head_dim;
    let model = LatencyModel::new(ModelPreset::Llama31_8b.config(), DeviceModel::ada6000());

    // Per-step recall cost measured on the episode, fed into the analytical
    // decode model (real recall traffic, not an assumed uniform rate).
    let cost_of = |result: &EpisodeResult| {
        let transferred_per_step = result.stats.transfer.tokens_moved as f64 / DECODE_STEPS as f64;
        move |ctx: usize| StepCost {
            scored_vectors_per_head: (ctx as f64 / 80.0).max(1.0),
            attended_tokens: BUDGET as f64,
            transferred_tokens_per_head: transferred_per_step,
            transferred_compressed_bytes: 0.0,
            staged_transfer_bytes: 0.0,
            retried_transfer_bytes: 0.0,
            retry_backoff_seconds: 0.0,
        }
    };

    if !json {
        println!("# Cluster-cache effectiveness (§V-C)\n");
    }
    let no_cache = run_with_capacity(ClusterKvConfig::default(), &episode, Bytes(0));
    let no_cache_run = model.run(
        CONTEXT_LEN,
        256,
        Some((CONTEXT_LEN / 80, 10)),
        cost_of(&no_cache),
    );
    // (r, hit rate, recalled tokens / step, throughput vs no cache)
    let mut window_rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    let mut table = Table::new(vec![
        "Recency window R",
        "Token hit rate",
        "Recalled / step",
        "Throughput vs no cache",
    ]);
    for r in [1usize, 2] {
        let config = ClusterKvConfig::default();
        let result = run_with_capacity(
            config,
            &episode,
            r_equivalent_capacity(r, &config, head_dim),
        );
        let cached_run = model.run(
            CONTEXT_LEN,
            256,
            Some((CONTEXT_LEN / 80, 10)),
            cost_of(&result),
        );
        let recalled = result.stats.transfer.tokens_moved as f64 / DECODE_STEPS as f64;
        let gain = cached_run.decode_throughput / no_cache_run.decode_throughput;
        window_rows.push((r, result.stats.cache.hit_rate(), recalled, gain));
        table.row(vec![
            r.to_string(),
            format!("{:.1}%", result.stats.cache.hit_rate() * 100.0),
            format!("{} tokens", fmt(recalled, 0)),
            format!("{}x", fmt(gain, 2)),
        ]);
    }
    if !json {
        println!("{}", table.render());
        println!(
            "Paper reference: hit rates of 63% (R=1) and 74% (R=2); throughput gains of 2.3x and 3x \
             over loading directly from CPU memory.\n"
        );
        println!("# Hit rate vs GPU cache capacity\n");
    }

    let full_kv = Bytes(4 * head_dim as u64 * (CONTEXT_LEN + DECODE_STEPS) as u64);
    let mut table = Table::new(vec![
        "Capacity (fraction of full KV)",
        "Capacity",
        "Token hit rate",
        "Bytes recalled",
    ]);
    // (label, capacity bytes, hit rate, bytes recalled)
    let mut sweep_rows: Vec<(&str, u64, f64, u64)> = Vec::new();
    let mut previous = -1.0f64;
    let mut monotone = true;
    for (label, capacity) in [
        ("0", Bytes(0)),
        ("1/16", Bytes(full_kv.get() / 16)),
        ("1/8", Bytes(full_kv.get() / 8)),
        ("1/4", Bytes(full_kv.get() / 4)),
        ("1/2", Bytes(full_kv.get() / 2)),
        ("1", full_kv),
        ("2", Bytes(2 * full_kv.get())),
    ] {
        let result = run_with_capacity(ClusterKvConfig::default(), &episode, capacity);
        let hit = result.stats.cache.hit_rate();
        monotone &= hit >= previous;
        previous = hit;
        sweep_rows.push((
            label,
            capacity.get(),
            hit,
            result.stats.transfer.bytes_to_device.get(),
        ));
        table.row(vec![
            label.to_string(),
            capacity.to_string(),
            format!("{:.1}%", hit * 100.0),
            result.stats.transfer.bytes_to_device.to_string(),
        ]);
    }
    if !json {
        println!("{}", table.render());
    }
    assert!(monotone, "hit rate must be non-decreasing in capacity");
    assert!(
        (previous - 1.0).abs() < 1e-12,
        "capacity >= full KV must never recall (hit rate {previous})"
    );
    if !json {
        println!(
            "Hit rate is monotonically non-decreasing in capacity and reaches 100% once the cache \
             holds the full KV.\n"
        );
        println!("# Cluster reuse-distance histogram\n");
    }

    // The stack distance of an access is a property of the request stream
    // alone, so any capacity's run measures the same histogram; take it from
    // the no-cache run already in hand.
    let reuse = &no_cache.reuse;
    assert!(reuse.total() > 0, "the episode must request pages");
    assert!(
        reuse.total() > reuse.cold,
        "semantic locality must produce reused clusters"
    );
    let mut table = Table::new(vec!["Stack distance (clusters)", "Accesses", "Cumulative"]);
    let mut cumulative = 0u64;
    for (i, count) in reuse.buckets.iter().enumerate() {
        cumulative += count;
        let lo = (1u64 << i) - 1;
        let hi = (1u64 << (i + 1)) - 2;
        table.row(vec![
            if lo == hi {
                lo.to_string()
            } else {
                format!("{lo}-{hi}")
            },
            count.to_string(),
            format!("{:.1}%", cumulative as f64 / reuse.total() as f64 * 100.0),
        ]);
    }
    table.row(vec![
        "cold (first touch)".to_string(),
        reuse.cold.to_string(),
        "100.0%".to_string(),
    ]);
    // The cumulative fraction below D clusters is the hit rate an LRU cache
    // of D whole clusters would achieve; it must be monotone in D.
    let mut prediction = Vec::new();
    let mut last = -1.0;
    for d in [4usize, 16, 64, 256] {
        let f = reuse.hit_fraction_within(d);
        assert!(f >= last, "cumulative histogram must be monotone");
        last = f;
        prediction.push((d, f));
    }
    if !json {
        println!("{}", table.render());
        let line: Vec<String> = prediction
            .iter()
            .map(|(d, f)| format!("{d} clusters -> {:.1}%", f * 100.0))
            .collect();
        println!(
            "Predicted LRU hit rate from the histogram alone: {}.\n",
            line.join(", ")
        );
        println!("# Ablation — incremental clustering period m (C+ = 4)\n");
    }

    // A longer decode so the smaller periods actually trigger incremental
    // clustering runs (320 steps = 4 runs at m = 80, none at m = 640).
    let long_decode = Episode::generate(
        EpisodeConfig::default()
            .with_context_len(CONTEXT_LEN)
            .with_decode_steps(320)
            .with_num_topics(40)
            .with_seed(0xCAC4E),
    );
    let mut table = Table::new(vec!["m (steps between clustering)", "Token hit rate"]);
    let mut ablation_rows: Vec<(usize, f64)> = Vec::new();
    for m in [80usize, 160, 320, 640] {
        let config = ClusterKvConfig::default().with_decode_cluster_period(m);
        let factory = ClusterKvFactory::new(config);
        let mut selector = factory.create(HeadContext {
            layer: 2,
            head: 0,
            head_dim,
        });
        let mut cache = ClusterCache::new(ClusterCacheConfig::new(
            r_equivalent_capacity(1, &config, head_dim),
            head_dim,
        ));
        let result = run_episode_cached(
            &long_decode,
            selector.as_mut(),
            Budget::new(BUDGET),
            &mut cache,
        );
        ablation_rows.push((m, result.stats.cache.hit_rate()));
        table.row(vec![
            m.to_string(),
            format!("{:.1}%", result.stats.cache.hit_rate() * 100.0),
        ]);
    }
    if !json {
        println!("{}", table.render());
    }

    if json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"exp_cache_hits\",\n");
        out.push_str("  \"workload\": {\n");
        out.push_str(&format!("    \"context_len\": {CONTEXT_LEN},\n"));
        out.push_str(&format!("    \"decode_steps\": {DECODE_STEPS},\n"));
        out.push_str(&format!("    \"budget\": {BUDGET}\n"));
        out.push_str("  },\n");
        out.push_str("  \"recency_windows\": [\n");
        for (i, (r, hit, recalled, gain)) in window_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"r\": {r}, \"hit_rate\": {hit:.6}, \"recalled_tokens_per_step\": \
                 {recalled:.3}, \"throughput_gain\": {gain:.4}}}{}\n",
                if i + 1 == window_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"capacity_sweep\": [\n");
        for (i, (label, bytes, hit, recalled)) in sweep_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"capacity_fraction\": \"{label}\", \"capacity_bytes\": {bytes}, \
                 \"hit_rate\": {hit:.6}, \"bytes_recalled\": {recalled}}}{}\n",
                if i + 1 == sweep_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"reuse_distance\": {\n");
        out.push_str(&format!(
            "    \"buckets\": [{}],\n",
            reuse
                .buckets
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("    \"cold\": {},\n", reuse.cold));
        out.push_str(&format!("    \"total\": {},\n", reuse.total()));
        out.push_str("    \"predicted_lru_hit_rate\": {\n");
        for (i, (d, f)) in prediction.iter().enumerate() {
            out.push_str(&format!(
                "      \"{d}\": {f:.6}{}\n",
                if i + 1 == prediction.len() { "" } else { "," }
            ));
        }
        out.push_str("    }\n");
        out.push_str("  },\n");
        out.push_str("  \"m_ablation\": [\n");
        for (i, (m, hit)) in ablation_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"m\": {m}, \"hit_rate\": {hit:.6}}}{}\n",
                if i + 1 == ablation_rows.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        print!("{out}");
    }
}
