//! Experiment E11 — §V-C "Effectiveness of caching".
//!
//! Measures the token-level hit rate of the cluster-granularity cache for
//! recency windows R = 1 and R = 2 on a NarrativeQA-style episode, and the
//! decoding-throughput improvement the cache buys compared to fetching every
//! selected token from CPU memory. Also sweeps the incremental-clustering
//! period `m` as an extra ablation.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin exp_cache_hits`

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_kvcache::types::Budget;
use clusterkv_kvcache::DeviceModel;
use clusterkv_metrics::{fmt, Table};
use clusterkv_model::latency::StepCost;
use clusterkv_model::policy::{HeadContext, SelectorFactory};
use clusterkv_model::{LatencyModel, ModelPreset};
use clusterkv_workloads::{run_episode, Episode, EpisodeConfig};

const BUDGET: usize = 1024;
const CONTEXT_LEN: usize = 8192;

fn hit_rate_for(config: ClusterKvConfig, episode: &Episode) -> f64 {
    let factory = ClusterKvFactory::new(config);
    let mut selector = factory.create(HeadContext {
        layer: 2,
        head: 0,
        head_dim: episode.config.head_dim,
    });
    let result = run_episode(episode, selector.as_mut(), Budget::new(BUDGET));
    result.stats.cache.hit_rate()
}

fn main() {
    let episode = Episode::generate(
        EpisodeConfig::default()
            .with_context_len(CONTEXT_LEN)
            .with_decode_steps(64)
            .with_num_topics(40)
            .with_seed(0xCAC4E),
    );
    let model = LatencyModel::new(ModelPreset::Llama31_8b.config(), DeviceModel::ada6000());

    println!("# Cluster-cache effectiveness (§V-C)\n");
    let mut table = Table::new(vec![
        "Recency window R",
        "Token hit rate",
        "Throughput vs no cache",
    ]);
    let no_cache = model.run(CONTEXT_LEN, 256, Some((CONTEXT_LEN / 80, 10)), |ctx| {
        StepCost {
            scored_vectors_per_head: (ctx as f64 / 80.0).max(1.0),
            attended_tokens: BUDGET as f64,
            transferred_tokens_per_head: BUDGET as f64,
        }
    });
    for r in [1usize, 2] {
        let hit = hit_rate_for(ClusterKvConfig::default().with_recency_window(r), &episode);
        let cached = model.run(CONTEXT_LEN, 256, Some((CONTEXT_LEN / 80, 10)), |ctx| {
            StepCost {
                scored_vectors_per_head: (ctx as f64 / 80.0).max(1.0),
                attended_tokens: BUDGET as f64,
                transferred_tokens_per_head: BUDGET as f64 * (1.0 - hit),
            }
        });
        table.row(vec![
            r.to_string(),
            format!("{:.1}%", hit * 100.0),
            format!(
                "{}x",
                fmt(cached.decode_throughput / no_cache.decode_throughput, 2)
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper reference: hit rates of 63% (R=1) and 74% (R=2); throughput gains of 2.3x and 3x \
         over loading directly from CPU memory.\n"
    );

    println!("# Ablation — incremental clustering period m (C+ = 4)\n");
    let mut table = Table::new(vec!["m (steps between clustering)", "Token hit rate"]);
    for m in [80usize, 160, 320, 640] {
        let hit = hit_rate_for(
            ClusterKvConfig::default().with_decode_cluster_period(m),
            &episode,
        );
        table.row(vec![m.to_string(), format!("{:.1}%", hit * 100.0)]);
    }
    println!("{}", table.render());
}
