//! Experiment E15 — quality vs memory of the compressed KV tier
//! (DESIGN.md §9).
//!
//! Runs ClusterKV, Quest and H2O through the quality lane
//! ([`clusterkv_workloads::quality`]) across the compression ladder
//! (lossless → int8 → int8+merge → int4 → int4+merge) and gates the three
//! properties the tier promises, rather than assuming them:
//!
//! * **Lossless parity** — under the lossless config every method's
//!   per-step recall/error/selection vectors are *bit-identical* to the
//!   plain harness: the compressed tier is a pure pass-through when turned
//!   off.
//! * **Memory at bounded quality** — ClusterKV's int4+merge lane reaches at
//!   least [`RATIO_FLOOR`]x cold-KV memory reduction while its
//!   compression-aware perplexity stays within [`PPL_DELTA_CEILING`] of the
//!   lossless run.
//! * **Monotone frontier** — for every method, each compression step along
//!   the ladder's partial order (quantize coarser, or merge at fixed width)
//!   strictly shrinks bytes and never improves perplexity: points trade
//!   memory for quality, they do not get both.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin exp_quality`
//! (set `EXP_QUALITY_SMOKE=1` for the CI-sized episode, `--json` for the
//! machine-readable summary).

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_baselines::BaselineKind;
use clusterkv_kvcache::compressed::CompressionConfig;
use clusterkv_kvcache::types::Budget;
use clusterkv_metrics::{fmt, Table};
use clusterkv_model::policy::{HeadContext, SelectorFactory};
use clusterkv_workloads::quality::{run_episode_quality, QualityLane, QualityResult};
use clusterkv_workloads::{run_episode, Episode, EpisodeConfig, LongBenchDataset};

const SEED: u64 = 0xE15;
/// Gate: ClusterKV's int4+merge lane must shrink cold KV by at least this
/// factor.
const RATIO_FLOOR: f64 = 4.0;
/// Gate: the same lane's compression-aware perplexity may exceed the
/// lossless run by at most this much. The proxy's base is 10.2 (PG19 /
/// Llama-3-8B full attention), so this bounds the compression-induced
/// degradation to well under the gap selective attention itself causes.
const PPL_DELTA_CEILING: f64 = 1.5;
/// SLERP merge threshold of the `+merge` lanes (cosine distance).
const MERGE: f32 = 0.3;
/// Merging may not *improve* perplexity by more than this. Strict
/// monotonicity holds for quantization (same vectors, coarser grid) but not
/// for merging: replacing a pair by its SLERP mean changes the page's
/// max-abs quantization scales, which can coincidentally shrink the
/// quantization error of the surviving vectors by a hair.
const MERGE_PPL_SLACK: f64 = 0.05;

fn smoke() -> bool {
    std::env::var("EXP_QUALITY_SMOKE").is_ok()
}

fn episode() -> Episode {
    let (context_len, decode_steps, num_topics) = if smoke() {
        (384, 12, 8)
    } else {
        (2048, 48, 24)
    };
    Episode::generate(
        EpisodeConfig::default()
            .with_context_len(context_len)
            .with_decode_steps(decode_steps)
            .with_num_topics(num_topics)
            .with_seed(SEED),
    )
}

fn budget() -> usize {
    if smoke() {
        96
    } else {
        512
    }
}

/// The compression ladder, lossless first. `(label, config)`.
fn ladder() -> Vec<(String, CompressionConfig)> {
    [
        CompressionConfig::lossless(),
        CompressionConfig::int8(),
        CompressionConfig::int8().with_merge_threshold(MERGE),
        CompressionConfig::int4(),
        CompressionConfig::int4().with_merge_threshold(MERGE),
    ]
    .into_iter()
    .map(|c| (c.to_string(), c))
    .collect()
}

/// Selector factory for `method` under `compression`. ClusterKV carries the
/// config in its own policy config (so its plans page by cluster and are
/// marked recall-compressed); the baselines are compression-oblivious — the
/// quality lane compresses their selections in positional blocks.
fn factory(method: &str, compression: CompressionConfig) -> Box<dyn SelectorFactory> {
    match method {
        "ClusterKV" => Box::new(ClusterKvFactory::new(
            ClusterKvConfig::default()
                .with_tokens_per_cluster(16)
                .with_compression(compression),
        )),
        "Quest" => BaselineKind::Quest.factory(),
        "H2O" => BaselineKind::H2o.factory(),
        other => panic!("unknown method {other}"),
    }
}

fn ctx(episode: &Episode) -> HeadContext {
    HeadContext {
        layer: 2,
        head: 0,
        head_dim: episode.config.head_dim,
    }
}

fn run_lane(method: &str, episode: &Episode, compression: CompressionConfig) -> QualityResult {
    let factory = factory(method, compression);
    let mut selector = factory.create(ctx(episode));
    run_episode_quality(
        episode,
        selector.as_mut(),
        Budget::new(budget()),
        QualityLane::new(compression),
    )
}

struct MethodFrontier {
    method: &'static str,
    /// One point per ladder rung, in ladder order.
    points: Vec<(String, QualityResult)>,
}

fn emit_json(frontiers: &[MethodFrontier], parity_methods: usize) {
    let profile = LongBenchDataset::TwoWikiMqa.profile();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"exp_quality\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", smoke()));
    out.push_str(&format!("  \"budget\": {},\n", budget()));
    out.push_str(&format!(
        "  \"lossless_parity_methods\": {parity_methods},\n"
    ));
    out.push_str("  \"frontier\": {\n");
    for (mi, f) in frontiers.iter().enumerate() {
        out.push_str(&format!("    \"{}\": [\n", f.method));
        for (i, (label, q)) in f.points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"config\": \"{}\", \"compression_ratio\": {:.4}, \
                 \"compressed_bytes\": {}, \"exact_bytes\": {}, \
                 \"merged_pairs\": {}, \"mean_recall\": {:.6}, \
                 \"reconstruction_error\": {:.6}, \"perplexity\": {:.6}, \
                 \"longbench_score\": {:.4}}}{}",
                label,
                q.compression_ratio(),
                q.compressed_bytes,
                q.exact_bytes,
                q.merged_pairs,
                q.result.mean_recall(),
                q.mean_reconstruction_error(),
                q.perplexity(),
                q.score(&profile),
                if i + 1 < f.points.len() { "," } else { "" }
            ));
            out.push('\n');
        }
        out.push_str(&format!(
            "    ]{}\n",
            if mi + 1 < frontiers.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    print!("{out}");
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let episode = episode();
    let methods = ["ClusterKV", "Quest", "H2O"];
    let rungs = ladder();

    if !json {
        println!("# Quality vs memory of the compressed KV tier (DESIGN.md §9)\n");
        println!(
            "episode: {} context tokens, {} decode steps, budget {}{}\n",
            episode.config.context_len,
            episode.config.decode_steps,
            budget(),
            if smoke() { " (smoke scale)" } else { "" }
        );
    }

    // ---- Gate (a): lossless parity — the quality lane under the lossless
    // config reproduces the plain harness bit for bit, for every method.
    let mut parity_methods = 0;
    for method in methods {
        let f = factory(method, CompressionConfig::lossless());
        let mut plain = f.create(ctx(&episode));
        let baseline = run_episode(&episode, plain.as_mut(), Budget::new(budget()));
        let q = run_lane(method, &episode, CompressionConfig::lossless());
        assert_eq!(
            q.result.per_step_recall, baseline.per_step_recall,
            "{method}: lossless recall diverged from the plain harness"
        );
        assert_eq!(
            q.result.per_step_error, baseline.per_step_error,
            "{method}: lossless error diverged from the plain harness"
        );
        assert_eq!(
            q.result.per_step_selected, baseline.per_step_selected,
            "{method}: lossless selection diverged from the plain harness"
        );
        assert_eq!(
            q.compressed_bytes, q.exact_bytes,
            "{method}: lossless pages must be byte-equal"
        );
        assert!(
            q.per_step_reconstruction_error.iter().all(|&e| e == 0.0),
            "{method}: lossless reconstruction must be exact"
        );
        parity_methods += 1;
    }
    if !json {
        println!(
            "Lossless parity: {parity_methods} methods bit-identical to the \
             plain harness (recall, error, selection), compressed bytes \
             equal exact bytes, zero reconstruction error.\n"
        );
    }

    // ---- Frontier: every method across the ladder.
    let frontiers: Vec<MethodFrontier> = methods
        .iter()
        .map(|&method| MethodFrontier {
            method,
            points: rungs
                .iter()
                .map(|(label, c)| (label.clone(), run_lane(method, &episode, *c)))
                .collect(),
        })
        .collect();

    // ---- Gate (b): monotone frontier along the ladder's partial order.
    // Coarser quantization at a fixed merge setting, and merging at a fixed
    // width, must both shrink bytes and not improve perplexity. Quantization
    // edges are strictly monotone (same vectors, coarser grid); merge edges
    // get `MERGE_PPL_SLACK` (see its doc comment).
    // Ladder indices: 0 lossless, 1 int8, 2 int8+merge, 3 int4, 4 int4+merge.
    let quant_edges: [(usize, usize); 4] = [(0, 1), (1, 3), (0, 3), (2, 4)];
    let merge_edges: [(usize, usize); 2] = [(1, 2), (3, 4)];
    for f in &frontiers {
        for (edges, slack) in [(&quant_edges[..], 0.0), (&merge_edges[..], MERGE_PPL_SLACK)] {
            for &(a, b) in edges {
                let (la, qa) = &f.points[a];
                let (lb, qb) = &f.points[b];
                assert!(
                    qb.compressed_bytes < qa.compressed_bytes,
                    "{}: {lb} must store fewer bytes than {la} ({} vs {})",
                    f.method,
                    qb.compressed_bytes,
                    qa.compressed_bytes
                );
                assert!(
                    qb.perplexity() >= qa.perplexity() - slack,
                    "{}: {lb} must not beat {la} on perplexity ({} vs {})",
                    f.method,
                    qb.perplexity(),
                    qa.perplexity()
                );
            }
        }
    }

    // ---- Gate (c): ClusterKV's int4+merge lane reaches the memory floor at
    // bounded perplexity cost.
    let clusterkv = &frontiers[0];
    let (_, lossless) = &clusterkv.points[0];
    let (_, best) = &clusterkv.points[4];
    assert!(
        best.compression_ratio() >= RATIO_FLOOR,
        "ClusterKV int4+merge must reach {RATIO_FLOOR}x cold-KV reduction: {:.3}x",
        best.compression_ratio()
    );
    let ppl_delta = best.perplexity() - lossless.perplexity();
    assert!(
        ppl_delta <= PPL_DELTA_CEILING,
        "ClusterKV int4+merge perplexity delta {ppl_delta:.4} exceeds \
         {PPL_DELTA_CEILING} (lossless {:.4}, compressed {:.4})",
        lossless.perplexity(),
        best.perplexity()
    );
    assert!(
        best.merged_pairs > 0,
        "semantic clusters must yield SLERP merges"
    );

    if !json {
        let profile = LongBenchDataset::TwoWikiMqa.profile();
        for f in &frontiers {
            let mut table = Table::new(vec![
                "Config",
                "Ratio",
                "Recall",
                "Recon err",
                "Perplexity",
                "2WikiMQA",
            ]);
            for (label, q) in &f.points {
                table.row(vec![
                    label.clone(),
                    fmt(q.compression_ratio(), 2),
                    fmt(q.result.mean_recall(), 3),
                    fmt(q.mean_reconstruction_error(), 4),
                    fmt(q.perplexity(), 3),
                    fmt(q.score(&profile), 2),
                ]);
            }
            println!("## {}\n{}", f.method, table.render());
        }
        println!(
            "Frontier gates: monotone along the ladder for all {} methods; \
             ClusterKV int4+merge reaches {:.2}x at perplexity delta \
             {:.3} (ceiling {PPL_DELTA_CEILING}).",
            frontiers.len(),
            best.compression_ratio(),
            ppl_delta
        );
    }

    if json {
        emit_json(&frontiers, parity_methods);
    }
}
