//! Experiments E3/E4 — Fig. 9 and Table I of the paper.
//!
//! Per-dataset scores of Quest, InfiniGen, ClusterKV and Full KV on the
//! eight LongBench profiles under KV budgets of 256/512/1024/2048 tokens,
//! plus the average over datasets (Table I).
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin fig09_longbench`

use clusterkv_bench::{evaluate_sweep, Method};
use clusterkv_metrics::{fmt, mean, Table};
use clusterkv_workloads::{Episode, LongBenchDataset};
use std::collections::BTreeMap;

const BUDGETS: [usize; 4] = [256, 512, 1024, 2048];

fn main() {
    println!("# Fig. 9 — LongBench scores per dataset and budget\n");

    // averages[method][budget] -> scores across datasets.
    let mut averages: BTreeMap<(String, usize), Vec<f64>> = BTreeMap::new();

    for dataset in LongBenchDataset::all() {
        let profile = dataset.profile();
        let episode = Episode::generate(profile.episode);
        let mut table = Table::new(vec!["Method", "B=256", "B=512", "B=1024", "B=2048"]);
        for method in Method::all() {
            let mut cells = vec![method.name().to_string()];
            // The four budgets run concurrently (thread-count invariant).
            for (result, &budget) in evaluate_sweep(method, &episode, &BUDGETS)
                .iter()
                .zip(&BUDGETS)
            {
                let score = profile.score(result);
                cells.push(fmt(score, 2));
                averages
                    .entry((method.name().to_string(), budget))
                    .or_default()
                    .push(score);
            }
            table.row(cells);
        }
        println!(
            "## {} ({}, context {} tokens)\n",
            dataset, profile.metric, profile.episode.context_len
        );
        println!("{}", table.render());
    }

    println!("# Table I — average score over the eight datasets\n");
    let mut table = Table::new(vec!["Method", "B=256", "B=512", "B=1024", "B=2048"]);
    for method in Method::all() {
        let mut cells = vec![method.name().to_string()];
        for &budget in &BUDGETS {
            let scores = &averages[&(method.name().to_string(), budget)];
            cells.push(fmt(mean(scores), 2));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "Paper reference (Table I): Quest 35.63/40.83/43.23/45.59, \
         InfiniGen 43.69/45.04/45.13/45.14, ClusterKV 46.69/48.02/48.34/48.70, Full KV 49.01."
    );
}
