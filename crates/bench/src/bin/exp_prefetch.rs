//! Experiment E15 — speculative cluster prefetch under the overlap clock
//! (DESIGN.md §10).
//!
//! During decode step *t* the engine nominates the clusters step *t+1* is
//! likely to select and stages their pages into a bounded staging buffer;
//! the roofline clock prices staged transfers as overlapped with compute
//! (`max(compute, staged) + demand` instead of a pure sum). This experiment
//! sweeps GPU cache capacity × predictor (none / reuse-last /
//! reuse+lookahead) and asserts the four properties the design promises,
//! rather than assuming them:
//!
//! * **Parity** — token streams, hit rates and recalled bytes are
//!   byte-identical with prefetch off, staging-only, reuse-last and
//!   reuse+lookahead, at every thread count swept. Prefetch changes *when*
//!   bytes move, never *what* attends.
//! * **Speedup** — reuse+lookahead strictly improves modeled mean TBT over
//!   no-prefetch at the two tightest capacities, where demand misses
//!   dominate the step and promotion out of the staging buffer pays.
//! * **Clock pinning** — with staging enabled but overlap pricing off, the
//!   modeled decode clock is bit-identical to the prefetch-off engine: the
//!   overlap clock with `staged = 0` *is* the pure-sum clock.
//! * **Determinism** — a repeated reuse+lookahead run reproduces streams,
//!   clock bits and prefetch statistics bit for bit.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin exp_prefetch`
//! (set `EXP_PREFETCH_SMOKE=1` for the CI-sized sweep, `--json` for the
//! machine-readable summary).

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_kvcache::stats::PrefetchStats;
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_kvcache::DeviceModel;
use clusterkv_metrics::{fmt, Table};
use clusterkv_model::{ModelConfig, PrefetchConfig, ServeEngine, SessionReport};

const SEED: u64 = 0xE15;
const BUDGET: usize = 48;
const TOKENS_PER_CLUSTER: usize = 16;
const SESSIONS: usize = 3;

fn smoke() -> bool {
    std::env::var("EXP_PREFETCH_SMOKE").is_ok()
}

fn model_config() -> ModelConfig {
    ModelConfig {
        num_layers: 3,
        num_heads: 4,
        num_kv_heads: 2,
        head_dim: 16,
        ffn_dim: 64,
        vocab_size: 256,
        max_context: 1024,
        dense_layers: 1,
    }
}

/// Device model for this experiment: the bench-scale weights are ~100 KB,
/// so at real HBM bandwidth the modeled compute would be nanoseconds and
/// nothing could hide behind it. Slowing the modeled HBM to 2 GB/s scales
/// the compute term up to where a production-sized model's sits (~100 µs
/// per step), restoring the compute-vs-PCIe ratio the overlap clock is
/// about; the PCIe side keeps the paper's testbed bandwidth.
fn bench_device() -> DeviceModel {
    DeviceModel {
        hbm_bandwidth: 2e9,
        ..DeviceModel::ada6000()
    }
}

fn context_len() -> usize {
    if smoke() {
        96
    } else {
        192
    }
}

fn decode_steps() -> usize {
    if smoke() {
        6
    } else {
        16
    }
}

fn engine(capacity: Bytes, prefetch: PrefetchConfig) -> ServeEngine {
    let factory = ClusterKvFactory::new(
        ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(TOKENS_PER_CLUSTER)
            .with_decode_cluster_period(8)
            .with_decode_new_clusters(2),
    );
    ServeEngine::builder(model_config())
        .synthetic_weights(SEED)
        .budget(Budget::new(BUDGET))
        .policy(Box::new(factory))
        .kv_cache_capacity(capacity)
        .device(bench_device())
        .prefetch(prefetch)
        .build()
        .expect("valid serving config")
}

/// Run `body` with `RAYON_NUM_THREADS` pinned to `threads`, restoring the
/// previous value afterwards.
fn with_threads<T>(threads: usize, body: impl FnOnce() -> T) -> T {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let out = body();
    match saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

/// Everything one serving run produces that the gates compare. Clock times
/// are compared through their raw bit patterns — "close enough" is not a
/// thing the determinism and pinning gates accept.
#[derive(Debug, Clone, PartialEq)]
struct RunOutcome {
    streams: Vec<Vec<usize>>,
    modeled_bits: Vec<u64>,
    hits: u64,
    misses: u64,
    recalled_bytes: u64,
    tbt: f64,
    prefetch: PrefetchStats,
    accuracy: f64,
    hidden_fraction: f64,
    wasted_bytes: u64,
}

/// Serve `SESSIONS` deterministic prompts on a fresh engine: prefill, then
/// `decode_steps()` fused batch steps across all sessions.
fn run(capacity: Bytes, prefetch: PrefetchConfig) -> RunOutcome {
    let cfg = model_config();
    let mut eng = engine(capacity, prefetch);
    let mut ids = Vec::new();
    for s in 0..SESSIONS {
        let prompt: Vec<usize> = (0..context_len())
            .map(|t| (t * 7 + 11 * (s + 1)) % cfg.vocab_size)
            .collect();
        let id = eng.create_session().expect("session slot");
        eng.prefill(id, &prompt).expect("prefill");
        ids.push(id);
    }
    let mut streams = vec![Vec::new(); SESSIONS];
    for _ in 0..decode_steps() {
        let outs = eng.decode_batch(&ids).expect("decode");
        for (stream, out) in streams.iter_mut().zip(&outs) {
            stream.push(out.next_token);
        }
    }
    let reports: Vec<SessionReport> = ids
        .into_iter()
        .map(|id| eng.release(id).expect("release"))
        .collect();
    let total_decode: f64 = reports.iter().map(|r| r.modeled_decode_time.get()).sum();
    let hidden: f64 = reports.iter().map(|r| r.hidden_transfer_time.get()).sum();
    let transfer: f64 = reports.iter().map(|r| r.transfer_time.get()).sum();
    let mut prefetch_stats = PrefetchStats::new();
    for r in &reports {
        prefetch_stats.merge(&r.prefetch);
    }
    RunOutcome {
        streams,
        modeled_bits: reports
            .iter()
            .map(|r| r.modeled_decode_time.get().to_bits())
            .collect(),
        hits: reports.iter().map(|r| r.stats.cache.hits).sum(),
        misses: reports.iter().map(|r| r.stats.cache.misses).sum(),
        recalled_bytes: reports.iter().map(|r| r.bytes_recalled().get()).sum(),
        tbt: total_decode / (SESSIONS * decode_steps()) as f64,
        accuracy: prefetch_stats.accuracy(),
        hidden_fraction: if transfer == 0.0 {
            0.0
        } else {
            hidden / transfer
        },
        wasted_bytes: prefetch_stats.wasted_bytes.get(),
        prefetch: prefetch_stats,
    }
}

/// The staging buffer every prefetch-enabled run uses: roomy enough that
/// the per-step byte budget and the GPU cache capacity stay the binding
/// constraints.
fn staging_capacity() -> Bytes {
    Bytes(1 << 20)
}

fn predictors() -> [(&'static str, PrefetchConfig); 3] {
    [
        ("none", PrefetchConfig::disabled()),
        ("reuse-last", PrefetchConfig::reuse_last(staging_capacity())),
        (
            "reuse+lookahead",
            PrefetchConfig::lookahead(staging_capacity()),
        ),
    ]
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cfg = model_config();
    // Capacities in units of one step's selected KV (budget plus one
    // trimmed cluster of slack): 1/4 and 1/2 thrash hard (the speedup
    // gates), 1 ≈ the paper's recency window R = 1, 8 holds the working
    // set.
    let unit = cfg.selected_kv_bytes_per_step(BUDGET + TOKENS_PER_CLUSTER);
    let capacities: [(&str, Bytes); 4] = [
        ("1/4", Bytes(unit / 4)),
        ("1/2", Bytes(unit / 2)),
        ("1", Bytes(unit)),
        ("8", Bytes(8 * unit)),
    ];

    if !json {
        println!("# Speculative cluster prefetch under the overlap clock (DESIGN.md §10)\n");
        println!(
            "model: {} layers x {} heads; {} sessions x {} prompt tokens, {} decode steps, \
             budget {}{}\n",
            cfg.num_layers,
            cfg.num_heads,
            SESSIONS,
            context_len(),
            decode_steps(),
            BUDGET,
            if smoke() { " (smoke scale)" } else { "" },
        );
    }

    // ---- Gate (a): byte-identical streams and cache accounting across
    // predictors (plus the staging-only probe) and thread counts.
    // Reference: prefetch off on one thread.
    let reference = with_threads(1, || run(capacities[1].1, PrefetchConfig::disabled()));
    let mut parity_cells = 0;
    let mut probes = predictors().to_vec();
    probes.push((
        "staging-only",
        PrefetchConfig::staging_only(staging_capacity()),
    ));
    for (name, prefetch) in &probes {
        for &threads in &[1usize, 2, 8] {
            let outcome = with_threads(threads, || run(capacities[1].1, *prefetch));
            assert_eq!(
                outcome.streams, reference.streams,
                "token streams diverged (predictor={name}, threads={threads})"
            );
            assert_eq!(
                (outcome.hits, outcome.misses, outcome.recalled_bytes),
                (reference.hits, reference.misses, reference.recalled_bytes),
                "cache accounting diverged (predictor={name}, threads={threads})"
            );
            parity_cells += 1;
        }
    }
    if !json {
        println!(
            "Parity: {} cells (predictors + staging-only probe x threads [1, 2, 8]) \
             all byte-identical to the prefetch-off single-thread run.\n",
            parity_cells
        );
    }

    // ---- Gate (c): the staging-only probe (staging and promotion active,
    // overlap pricing off) reproduces the prefetch-off modeled clock bit
    // for bit — the overlap clock with nothing staged is the pure-sum
    // clock.
    let probe = run(
        capacities[1].1,
        PrefetchConfig::staging_only(staging_capacity()),
    );
    assert_eq!(
        probe.modeled_bits, reference.modeled_bits,
        "staging without overlap pricing must not move the clock by a single bit"
    );
    assert!(
        probe.prefetch.staged_pages > 0 && probe.prefetch.used_pages > 0,
        "the probe must actually stage and promote to make the pinning meaningful"
    );

    // ---- Sweep: capacity x predictor.
    let mut rows: Vec<(String, String, RunOutcome)> = Vec::new();
    for (cap_label, capacity) in &capacities {
        for (pred_label, prefetch) in predictors() {
            let outcome = run(*capacity, prefetch);
            rows.push((cap_label.to_string(), pred_label.to_string(), outcome));
        }
    }
    let row = |cap: &str, pred: &str| {
        &rows
            .iter()
            .find(|(c, p, _)| c == cap && p == pred)
            .expect("sweep covers the full grid")
            .2
    };

    // Every cell of the sweep generates the same streams.
    for (cap, pred, outcome) in &rows {
        assert_eq!(
            outcome.streams, reference.streams,
            "token streams diverged in the sweep (capacity={cap}, predictor={pred})"
        );
    }

    // ---- Gate (b): reuse+lookahead strictly improves modeled mean TBT
    // over no-prefetch at the two tightest capacities.
    for (cap_label, _) in &capacities[..2] {
        let base = row(cap_label, "none");
        let look = row(cap_label, "reuse+lookahead");
        assert!(
            look.prefetch.used_pages > 0,
            "capacity {cap_label}: lookahead staged nothing the next step used"
        );
        assert!(
            look.tbt < base.tbt,
            "capacity {cap_label}: reuse+lookahead must strictly improve mean TBT \
             ({:.3} µs vs {:.3} µs)",
            look.tbt * 1e6,
            base.tbt * 1e6
        );
    }

    if !json {
        let mut table = Table::new(vec![
            "Capacity (steps)",
            "Predictor",
            "TBT (µs)",
            "Hit rate",
            "Accuracy",
            "Hidden transfer",
            "Wasted",
        ]);
        for (cap, pred, o) in &rows {
            let hit_rate = o.hits as f64 / (o.hits + o.misses).max(1) as f64;
            table.row(vec![
                cap.clone(),
                pred.clone(),
                fmt(o.tbt * 1e6, 2),
                format!("{:.1}%", hit_rate * 100.0),
                format!("{:.1}%", o.accuracy * 100.0),
                format!("{:.1}%", o.hidden_fraction * 100.0),
                Bytes(o.wasted_bytes).to_string(),
            ]);
        }
        println!("{}", table.render());
        let tight = row("1/4", "reuse+lookahead");
        let base = row("1/4", "none");
        println!(
            "Tightest capacity: reuse+lookahead cuts mean TBT {} -> {} \
             ({:.1}% of staged bytes used, {:.1}% of transfer time hidden).\n",
            fmt(base.tbt * 1e6, 2),
            fmt(tight.tbt * 1e6, 2),
            tight.accuracy * 100.0,
            tight.hidden_fraction * 100.0,
        );
    }

    // ---- Gate (d): bit-identical repeat of the reuse+lookahead run at the
    // tightest capacity.
    let again = run(
        capacities[0].1,
        PrefetchConfig::lookahead(staging_capacity()),
    );
    assert_eq!(
        row("1/4", "reuse+lookahead"),
        &again,
        "repeated reuse+lookahead runs must be bit-identical"
    );
    if !json {
        println!(
            "Determinism: repeated reuse+lookahead run reproduced every stream, clock bit \
             and prefetch counter."
        );
    }

    if json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"exp_prefetch\",\n");
        out.push_str(&format!("  \"smoke\": {},\n", smoke()));
        out.push_str(&format!(
            "  \"threads\": {},\n",
            rayon::current_num_threads()
        ));
        out.push_str("  \"workload\": {\n");
        out.push_str(&format!("    \"sessions\": {SESSIONS},\n"));
        out.push_str(&format!("    \"context_len\": {},\n", context_len()));
        out.push_str(&format!("    \"decode_steps\": {},\n", decode_steps()));
        out.push_str(&format!("    \"budget\": {BUDGET}\n"));
        out.push_str("  },\n");
        out.push_str(&format!("  \"parity_cells\": {parity_cells},\n"));
        out.push_str("  \"clock_pinned\": true,\n");
        out.push_str("  \"sweep\": [\n");
        for (i, (cap, pred, o)) in rows.iter().enumerate() {
            let hit_rate = o.hits as f64 / (o.hits + o.misses).max(1) as f64;
            out.push_str(&format!(
                "    {{\"capacity_steps\": \"{cap}\", \"predictor\": \"{pred}\", \
                 \"tbt_us\": {:.6}, \"hit_rate\": {:.6}, \"accuracy\": {:.6}, \
                 \"hidden_fraction\": {:.6}, \"staged_bytes\": {}, \"used_bytes\": {}, \
                 \"wasted_bytes\": {}}}{}\n",
                o.tbt * 1e6,
                hit_rate,
                o.accuracy,
                o.hidden_fraction,
                o.prefetch.staged_bytes.get(),
                o.prefetch.used_bytes.get(),
                o.wasted_bytes,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"deterministic\": true\n");
        out.push_str("}\n");
        print!("{out}");
    }
}
