//! Experiment E13 — traffic-driven serving: continuous batching vs
//! run-to-completion.
//!
//! ClusterKV's headline claim is serving-time efficiency, so this experiment
//! puts the whole stack under open-loop traffic: a deterministic Poisson
//! trace of mixed-length requests (`clusterkv_workloads::generate_traffic`)
//! is served by `clusterkv_sched::Scheduler` over a ClusterKV `ServeEngine`
//! with a bounded GPU cluster cache, sweeping **arrival rate × scheduling
//! policy × KV admission budget**. For every cell it reports modeled
//! generation throughput and the TTFT / end-to-end latency distributions
//! (mean / p50 / p95 / p99 via `clusterkv_metrics::LatencySummary`).
//!
//! Two properties are asserted, not assumed:
//!
//! * **Identical outputs** — every policy generates byte-identical
//!   per-request token streams (scheduling decides *when*, never *what*),
//!   and a repeated run reproduces the report bit for bit.
//! * **Continuous batching wins** — at the highest swept arrival rate,
//!   CB-FCFS beats run-to-completion FCFS on mean TTFT.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin exp_serving`
//! (set `EXP_SERVING_SMOKE=1` for the CI-sized trace).

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_metrics::{fmt, LatencySummary, Table};
use clusterkv_model::{ModelConfig, ServeEngine};
use clusterkv_sched::{SchedConfig, SchedPolicy, Scheduler, ServingReport};
use clusterkv_workloads::{generate_traffic, TrafficConfig};

const BUDGET: usize = 48;
const SEED: u64 = 0xE13;

fn model_config() -> ModelConfig {
    ModelConfig {
        num_layers: 3,
        num_heads: 4,
        num_kv_heads: 2,
        head_dim: 16,
        ffn_dim: 64,
        vocab_size: 256,
        max_context: 512,
        dense_layers: 1,
    }
}

fn engine(kv_cache: Bytes) -> ServeEngine {
    let factory = ClusterKvFactory::new(
        ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(16)
            .with_decode_cluster_period(8)
            .with_decode_new_clusters(2),
    );
    ServeEngine::builder(model_config())
        .synthetic_weights(SEED)
        .budget(Budget::new(BUDGET))
        .policy(Box::new(factory))
        .kv_cache_capacity(kv_cache)
        .build()
        .expect("valid serving config")
}

/// One swept cell: serve `traffic` under `policy` with the given KV
/// admission budget.
fn serve(
    policy: SchedPolicy,
    kv_admission: Option<Bytes>,
    rate: f64,
    smoke: bool,
) -> ServingReport {
    let cfg = model_config();
    let traffic = generate_traffic(
        &TrafficConfig::new(if smoke { 10 } else { 32 }, rate, cfg.vocab_size)
            .with_prompt_len(24, 96)
            .with_output_len(4, if smoke { 8 } else { 16 })
            .with_priority_levels(3)
            .with_seed(SEED),
    );
    let mut sched_cfg = SchedConfig::fcfs(8)
        .with_policy(policy)
        .with_chunk_tokens(32)
        .with_tick_token_budget(64);
    if let Some(capacity) = kv_admission {
        sched_cfg = sched_cfg.with_kv_capacity(capacity);
    }
    let mut sched =
        Scheduler::new(engine(Bytes(1 << 17)), sched_cfg).expect("valid scheduler config");
    sched.submit_all(traffic).expect("trace is servable");
    sched.run().expect("trace completes")
}

fn main() {
    let smoke = std::env::var("EXP_SERVING_SMOKE").is_ok();
    let policies = [
        SchedPolicy::RunToCompletion,
        SchedPolicy::Fcfs,
        SchedPolicy::PriorityAging {
            aging_per_second: 50.0,
        },
    ];
    let rates: &[f64] = if smoke {
        &[50.0, 2_000.0]
    } else {
        &[20.0, 200.0, 2_000.0]
    };
    let kv_per_token = model_config().kv_bytes_per_token();
    // Admission budgets: enough worst-case KV for ~2 concurrent long
    // requests (tight) vs effectively unbounded.
    let kv_budgets: [(&str, Option<Bytes>); 2] = [
        ("tight", Some(Bytes(2 * 112 * kv_per_token))),
        ("unbounded", None),
    ];

    println!("# Serving under open-loop traffic — arrival rate x policy x KV admission budget\n");
    println!(
        "model: {} layers x {} heads; selection budget {BUDGET}; \
         {} requests per cell{}\n",
        model_config().num_layers,
        model_config().num_heads,
        if smoke { 10 } else { 32 },
        if smoke { " (smoke scale)" } else { "" },
    );

    let mut table = Table::new(vec![
        "Policy",
        "Rate (req/s)",
        "KV budget",
        "Tok/s",
        "TTFT mean (ms)",
        "TTFT p50",
        "TTFT p95",
        "TTFT p99",
        "E2E p95 (ms)",
    ]);
    let mut cb_vs_rtc_at_peak: Option<(f64, f64)> = None;
    for &(kv_name, kv) in &kv_budgets {
        for &rate in rates {
            let mut streams_reference: Option<Vec<Vec<usize>>> = None;
            for policy in policies {
                let report = serve(policy, kv, rate, smoke);
                // Scheduling must never change what is generated.
                let streams: Vec<Vec<usize>> =
                    report.requests.iter().map(|r| r.tokens.clone()).collect();
                match &streams_reference {
                    Some(reference) => assert_eq!(
                        &streams,
                        reference,
                        "{} changed token streams at rate {rate} ({kv_name})",
                        policy.name()
                    ),
                    None => streams_reference = Some(streams),
                }
                let ttft = LatencySummary::from_values(&report.ttfts());
                let e2e = LatencySummary::from_values(&report.e2es());
                if kv_name == "unbounded" && rate == *rates.last().unwrap() {
                    match policy {
                        SchedPolicy::RunToCompletion => {
                            cb_vs_rtc_at_peak = Some((ttft.mean, f64::NAN))
                        }
                        SchedPolicy::Fcfs => {
                            if let Some((rtc, _)) = cb_vs_rtc_at_peak {
                                cb_vs_rtc_at_peak = Some((rtc, ttft.mean));
                            }
                        }
                        SchedPolicy::PriorityAging { .. } => {}
                    }
                }
                let mut cells = vec![
                    policy.name().to_string(),
                    fmt(rate, 0),
                    kv_name.to_string(),
                    fmt(report.throughput(), 0),
                ];
                cells.extend(ttft.millis_cells(2));
                cells.push(fmt(e2e.p95 * 1e3, 2));
                table.row(cells);
            }
        }
    }
    println!("{}", table.render());

    // Determinism gate: the CI smoke (and any rerun) must reproduce the
    // same totals bit for bit.
    let peak = *rates.last().unwrap();
    let a = serve(SchedPolicy::Fcfs, None, peak, smoke);
    let b = serve(SchedPolicy::Fcfs, None, peak, smoke);
    assert_eq!(a, b, "repeated runs must produce bit-identical reports");
    println!(
        "Determinism: repeated CB-FCFS run at rate {peak} reproduced \
         {} generated tokens and makespan {} bit for bit.",
        a.total_generated, a.makespan
    );

    // The acceptance gate: continuous batching strictly beats
    // run-to-completion on mean TTFT at the highest swept arrival rate.
    let (rtc, cb) = cb_vs_rtc_at_peak.expect("peak cells ran");
    assert!(
        cb < rtc,
        "continuous batching must beat run-to-completion on mean TTFT at \
         rate {peak}: CB {cb:.6} s vs RTC {rtc:.6} s"
    );
    println!(
        "Continuous batching beats run-to-completion on mean TTFT at rate \
         {peak}: {:.2} ms vs {:.2} ms ({:.2}x).",
        cb * 1e3,
        rtc * 1e3,
        rtc / cb
    );

    // Per-request detail of the most interesting cell, through the shared
    // metrics row emitter (no hand-formatted report fields).
    println!("\n## Per-request detail — CB-FCFS, rate {peak}, unbounded KV\n");
    println!(
        "{}",
        clusterkv_metrics::request_table(&a.request_rows()).render()
    );
}
