//! Experiment E13 — the blocked kernel layer vs the scalar reference
//! kernels on the decode hot path (DESIGN.md §6).
//!
//! Three measurements, all on the same data at long context (`n = 8192`
//! tokens, `d = 64`):
//!
//! 1. **Centroid scoring** — one blocked matvec over an `n × d` matrix
//!    (`matvec_t_into` into a warm workspace) vs the scalar per-row
//!    `dot`-and-collect reference (`matvec_t_reference`).
//! 2. **K-means assignment** — the Gram-trick sweep with cached row /
//!    centroid norms (`assign_labels`) vs the per-pair `metric.distance`
//!    reference (`assign_labels_reference`, three scalar dots per pair under
//!    cosine).
//! 3. **Long-context decode step** — the fused ClusterKV single-head hot
//!    loop (centroid selection + gather-attend through one reusable
//!    workspace) vs the allocating scalar pipeline, reported as decode
//!    tokens/sec.
//!
//! The first two are **gated**: the blocked kernel must beat its reference
//! by ≥ 2× at `n = 8192` or the binary exits non-zero — this is the repo's
//! perf floor for the kernel layer. Pass `--json` to emit a machine-readable
//! summary (CI archives it as `BENCH_hotpath.json` to seed the perf
//! trajectory). `EXP_HOTPATH_SMOKE=1` shrinks the trial counts (same `n`, so
//! the gate stays meaningful) for CI.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin exp_hotpath`

use clusterkv::{
    assign_labels, assign_labels_reference, select_clusters, select_clusters_ws, ClusterKvConfig,
    DistanceMetric, SemanticClustering,
};
use clusterkv_kvcache::types::Budget;
use clusterkv_kvcache::KvStore;
use clusterkv_metrics::{fmt, Table};
use clusterkv_model::attention::{attend_selected_reference, attend_selected_ws};
use clusterkv_tensor::kernels::{matvec_t_into, matvec_t_reference, row_norms_sq_into, Workspace};
use clusterkv_tensor::rng::{gaussian_vec, seeded};
use clusterkv_tensor::Matrix;
use std::time::Instant;

const N: usize = 8192;
const DIM: usize = 64;
const SPEEDUP_FLOOR: f64 = 2.0;

fn smoke() -> bool {
    std::env::var("EXP_HOTPATH_SMOKE").is_ok_and(|v| v == "1")
}

/// Best-of-`trials` wall-clock of `reps` calls to `f`, in seconds per call.
/// Best-of (not mean) rejects scheduler noise on shared CI hosts.
fn best_of<F: FnMut()>(trials: usize, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

struct Section {
    name: &'static str,
    blocked_us: f64,
    reference_us: f64,
    gated: bool,
}

impl Section {
    fn speedup(&self) -> f64 {
        self.reference_us / self.blocked_us
    }
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = seeded(seed);
    Matrix::from_flat(rows, cols, gaussian_vec(&mut rng, rows * cols, 0.0, 1.0)).unwrap()
}

fn bench_centroid_scoring(trials: usize, reps: usize) -> Section {
    let keys = random_matrix(N, DIM, 0xC0);
    let query = gaussian_vec(&mut seeded(0xC1), DIM, 0.0, 1.0);
    let mut ws = Workspace::new();
    matvec_t_into(&keys, &query, &mut ws.scores); // warm
    let mut sink = 0.0f32;
    let blocked = best_of(trials, reps, || {
        matvec_t_into(&keys, &query, &mut ws.scores);
        sink += ws.scores[0];
    });
    let reference = best_of(trials, reps, || {
        let scores = matvec_t_reference(&keys, &query);
        sink += scores[0];
    });
    assert!(sink.is_finite());
    Section {
        name: "centroid_scoring",
        blocked_us: blocked * 1e6,
        reference_us: reference * 1e6,
        gated: true,
    }
}

fn bench_kmeans_assignment(trials: usize, reps: usize) -> Section {
    let keys = random_matrix(N, DIM, 0xA0);
    let k = (N / 80).max(4);
    let picks: Vec<usize> = (0..k).map(|c| c * N / k).collect();
    let centroids = keys.select_rows(&picks);
    let mut norms = Vec::new();
    row_norms_sq_into(&keys, &mut norms);
    let mut ws = Workspace::new();
    let metric = DistanceMetric::Cosine;
    let mut sink = 0usize;
    let blocked = best_of(trials, reps, || {
        sink += assign_labels(metric, &keys, &norms, &centroids, &mut ws)[0];
    });
    let reference = best_of(trials, reps, || {
        sink += assign_labels_reference(metric, &keys, &centroids)[0];
    });
    assert!(sink < usize::MAX);
    Section {
        name: "kmeans_assignment",
        blocked_us: blocked * 1e6,
        reference_us: reference * 1e6,
        gated: true,
    }
}

/// The single-head decode hot loop at context `N`: plan a cluster selection
/// for the step's query, then attend over the selected tokens. The fused
/// path runs scoring, ranking and gather-attend through one reusable
/// workspace; the reference path is the allocating scalar pipeline.
fn bench_decode_step(trials: usize, steps: usize) -> (Section, f64) {
    let keys = random_matrix(N, DIM, 0xD0);
    let values = random_matrix(N, DIM, 0xD1);
    let mut store = KvStore::new(DIM);
    store.append_batch(&keys, &values);
    let mut clustering =
        SemanticClustering::new(ClusterKvConfig::default().with_tokens_per_cluster(80), DIM);
    clustering.prefill(&keys);
    let queries: Vec<Vec<f32>> = {
        let mut rng = seeded(0xD2);
        (0..steps)
            .map(|_| gaussian_vec(&mut rng, DIM, 0.0, 1.0))
            .collect()
    };
    let budget = Budget::new(1024);
    let mut ws = Workspace::new();
    let mut sink = 0.0f32;
    let blocked = best_of(trials, 1, || {
        for q in &queries {
            let plan = select_clusters_ws(q, &clustering, budget, &mut ws);
            attend_selected_ws(&store, q, &plan.token_indices, &mut ws);
            sink += ws.out[0];
        }
    }) / steps as f64;
    let reference = best_of(trials, 1, || {
        for q in &queries {
            let plan = select_clusters(q, &clustering, budget);
            let out = attend_selected_reference(&store, q, &plan.token_indices);
            sink += out.output[0];
        }
    }) / steps as f64;
    assert!(sink.is_finite());
    let section = Section {
        name: "decode_step",
        blocked_us: blocked * 1e6,
        reference_us: reference * 1e6,
        gated: false,
    };
    let tokens_per_sec = 1.0 / blocked;
    (section, tokens_per_sec)
}

fn emit_json(sections: &[Section], tokens_per_sec: f64, scale: (usize, usize, usize)) {
    let (trials, reps, steps) = scale;
    let mut out = String::from("{\"bench\":\"exp_hotpath\"");
    out.push_str(&format!(",\"n\":{N},\"dim\":{DIM},\"smoke\":{}", smoke()));
    out.push_str(&format!(",\"threads\":{}", rayon::current_num_threads()));
    out.push_str(&format!(
        ",\"scale\":{{\"trials\":{trials},\"reps\":{reps},\"decode_steps\":{steps}}}"
    ));
    out.push_str(&format!(",\"decode_tokens_per_sec\":{:.1}", tokens_per_sec));
    out.push_str(",\"sections\":{");
    for (i, s) in sections.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"blocked_us\":{:.2},\"reference_us\":{:.2},\"speedup\":{:.3},\"gated\":{}}}",
            s.name,
            s.blocked_us,
            s.reference_us,
            s.speedup(),
            s.gated
        ));
    }
    out.push_str("}}");
    println!("{out}");
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let (trials, reps, steps) = if smoke() { (2, 3, 8) } else { (5, 10, 24) };

    let scoring = bench_centroid_scoring(trials, reps);
    let assignment = bench_kmeans_assignment(trials, reps.clamp(3, 5));
    let (decode, tokens_per_sec) = bench_decode_step(trials, steps);
    let sections = [scoring, assignment, decode];

    if json {
        emit_json(&sections, tokens_per_sec, (trials, reps, steps));
    } else {
        println!("# Hot-path kernels — blocked vs reference at n = {N}, d = {DIM}\n");
        let mut table = Table::new(vec![
            "Kernel",
            "Blocked (us)",
            "Reference (us)",
            "Speedup",
            "Gate",
        ]);
        for s in &sections {
            table.row(vec![
                s.name.to_string(),
                fmt(s.blocked_us, 1),
                fmt(s.reference_us, 1),
                format!("{}x", fmt(s.speedup(), 2)),
                if s.gated {
                    format!(">= {SPEEDUP_FLOOR}x")
                } else {
                    "-".to_string()
                },
            ]);
        }
        println!("{}", table.render());
        println!(
            "Long-context decode step (selection + attend, budget 1024): \
             {} tokens/sec fused vs {} tokens/sec reference.",
            fmt(tokens_per_sec, 0),
            fmt(1e6 / sections[2].reference_us, 0),
        );
    }

    // The perf floor: blocked kernels must beat the scalar references by
    // >= 2x on the gated sections. A regression here fails CI.
    for s in &sections {
        if s.gated {
            assert!(
                s.speedup() >= SPEEDUP_FLOOR,
                "{} speedup {:.2}x is below the {SPEEDUP_FLOOR}x floor \
                 (blocked {:.1}us vs reference {:.1}us)",
                s.name,
                s.speedup(),
                s.blocked_us,
                s.reference_us
            );
        }
    }
    if !json {
        println!("\nGate passed: every gated kernel is >= {SPEEDUP_FLOOR}x its reference.");
    }
}
