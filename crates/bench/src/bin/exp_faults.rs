//! Experiment E16 — serving under injected faults: integrity, recovery and
//! graceful degradation (DESIGN.md §11).
//!
//! A deterministic open-loop trace is served through the full stack while a
//! seeded `FaultPlan` injects modeled transfer failures (retry with
//! exponential backoff charged to the clock), page corruption (detected by
//! per-page checksums and repaired in place), whole-session crashes
//! (checkpoint/restore through the prefix store, bounded re-admission) and
//! capacity-pressure events (the shed → demote → stop-admitting ladder).
//! The sweep is **fault rate × recovery policy** (fail-fast: no retries vs
//! retry: bounded crash re-admission), and four properties are asserted,
//! not assumed:
//!
//! * **Parity** — every request that completes under faults streams tokens
//!   byte-identical to the fault-free run, at every thread count probed.
//!   Faults change *when* and *how long*, never *what* attends.
//! * **Monotone degradation** — goodput (completed fraction and completed
//!   tokens per modeled second) never improves as the fault rate rises, and
//!   the retry policy never completes fewer requests than fail-fast.
//! * **Zero silent corruptions** — every injected corruption is detected by
//!   a checksum mismatch and repaired: injected == detected == repaired,
//!   with a strictly positive count at positive rates.
//! * **Determinism** — a repeated run of the faultiest cell reproduces the
//!   whole serving report bit for bit.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin exp_faults`
//! (set `EXP_FAULTS_SMOKE=1` for the CI-sized trace, `--json` for the
//! machine-readable summary).

use std::collections::BTreeMap;

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_faults::FaultPlan;
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_metrics::{fmt, Table};
use clusterkv_model::{ModelConfig, ServeEngine};
use clusterkv_sched::{SchedConfig, Scheduler, ServingReport};
use clusterkv_workloads::{generate_traffic, TrafficConfig};

const BUDGET: usize = 48;
const SEED: u64 = 0xE16;

fn smoke() -> bool {
    std::env::var("EXP_FAULTS_SMOKE").is_ok()
}

fn model_config() -> ModelConfig {
    ModelConfig {
        num_layers: 3,
        num_heads: 4,
        num_kv_heads: 2,
        head_dim: 16,
        ffn_dim: 64,
        vocab_size: 256,
        max_context: 512,
        dense_layers: 1,
    }
}

fn num_requests() -> usize {
    if smoke() {
        10
    } else {
        24
    }
}

/// The serving engine every cell uses: a ClusterKV policy over a bounded
/// GPU cluster cache (so demand transfers — the fault surface — actually
/// happen) plus a prefix store (the crash checkpoint: prompts donated at
/// finish-prefill are re-adopted on retry instead of recomputed).
fn engine(plan: FaultPlan) -> ServeEngine {
    let factory = ClusterKvFactory::new(
        ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(16)
            .with_decode_cluster_period(8)
            .with_decode_new_clusters(2),
    );
    ServeEngine::builder(model_config())
        .synthetic_weights(SEED)
        .budget(Budget::new(BUDGET))
        .policy(Box::new(factory))
        // Tight enough that the selected working set does not stay fully
        // resident: demand transfers — the retry fault surface — happen on
        // most decode steps.
        .kv_cache_capacity(Bytes(1 << 14))
        .prefix_store(Bytes(1 << 20))
        .faults(plan)
        .build()
        .expect("valid serving config")
}

/// One recovery policy: a name and the crash-retry budget it grants.
#[derive(Debug, Clone, Copy)]
struct RecoveryPolicy {
    name: &'static str,
    max_retries: u32,
}

const POLICIES: [RecoveryPolicy; 2] = [
    RecoveryPolicy {
        name: "fail-fast",
        max_retries: 0,
    },
    RecoveryPolicy {
        name: "retry",
        max_retries: 3,
    },
];

/// Serve the deterministic trace under `plan` and `policy`.
fn serve(plan: FaultPlan, policy: RecoveryPolicy) -> ServingReport {
    let cfg = model_config();
    let traffic = generate_traffic(
        &TrafficConfig::new(num_requests(), 200.0, cfg.vocab_size)
            .with_prompt_len(24, 96)
            .with_output_len(4, if smoke() { 8 } else { 12 })
            .with_priority_levels(3)
            .with_seed(SEED),
    );
    let sched_cfg = SchedConfig::fcfs(8)
        .with_chunk_tokens(32)
        .with_tick_token_budget(64)
        .with_kv_capacity(Bytes(2 * 108 * cfg.kv_bytes_per_token()))
        .with_faults(plan)
        .with_max_retries(policy.max_retries);
    // The same plan drives both layers: the engine injector owns the
    // transfer-retry and corruption sites, the scheduler injector owns
    // crash and pressure.
    let mut sched = Scheduler::new(engine(plan), sched_cfg).expect("valid scheduler config");
    sched.submit_all(traffic).expect("trace is servable");
    sched.run().expect("trace completes")
}

/// Run `body` with `RAYON_NUM_THREADS` pinned to `threads`, restoring the
/// previous value afterwards.
fn with_threads<T>(threads: usize, body: impl FnOnce() -> T) -> T {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let out = body();
    match saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

/// Completed token streams keyed by request id.
fn completed_streams(report: &ServingReport) -> BTreeMap<u64, Vec<usize>> {
    report
        .completed()
        .map(|r| (r.id.0, r.tokens.clone()))
        .collect()
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cfg = model_config();
    let rates: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

    if !json {
        println!(
            "# Serving under injected faults — fault rate x recovery policy (DESIGN.md §11)\n"
        );
        println!(
            "model: {} layers x {} heads; {} requests, uniform fault plan \
             (transfer = rate, corruption = rate/2, crash = rate/8, pressure = rate){}\n",
            cfg.num_layers,
            cfg.num_heads,
            num_requests(),
            if smoke() { " (smoke scale)" } else { "" },
        );
    }

    // The fault-free reference: every request completes, and its streams
    // are the parity baseline for every faulty cell.
    let reference = with_threads(1, || serve(FaultPlan::uniform(SEED, 0.0), POLICIES[1]));
    assert_eq!(
        reference.completed_fraction(),
        1.0,
        "the fault-free reference completes every request"
    );
    let reference_streams = completed_streams(&reference);

    // ---- Sweep: fault rate x recovery policy.
    let mut rows: Vec<(f64, &'static str, ServingReport)> = Vec::new();
    for &rate in &rates {
        for policy in POLICIES {
            let report = serve(FaultPlan::uniform(SEED, rate), policy);
            rows.push((rate, policy.name, report));
        }
    }
    let cell = |rate: f64, policy: &str| {
        &rows
            .iter()
            .find(|(r, p, _)| *r == rate && *p == policy)
            .expect("sweep covers the full grid")
            .2
    };

    // ---- Gate (a): stream parity for completed requests, every cell.
    for (rate, policy, report) in &rows {
        for (id, tokens) in completed_streams(report) {
            assert_eq!(
                Some(&tokens),
                reference_streams.get(&id),
                "request {id} diverged from the fault-free stream \
                 (rate={rate}, policy={policy})"
            );
        }
    }
    // ... at other thread counts too: the faultiest retry cell reproduces
    // its single-thread streams under the default thread pool.
    let threaded = serve(FaultPlan::uniform(SEED, rates[3]), POLICIES[1]);
    assert_eq!(
        completed_streams(&threaded),
        completed_streams(cell(rates[3], "retry")),
        "thread count changed completed streams under faults"
    );

    // ---- Gate (b): monotone goodput degradation along the rate axis, and
    // retries never complete fewer requests than fail-fast.
    for policy in POLICIES {
        let mut prev_completed = f64::INFINITY;
        let mut prev_goodput = f64::INFINITY;
        for &rate in &rates {
            let report = cell(rate, policy.name);
            let completed = report.completed_fraction();
            let goodput = report.throughput();
            assert!(
                completed <= prev_completed,
                "completed fraction rose with the fault rate \
                 (policy={}, rate={rate}: {completed} > {prev_completed})",
                policy.name
            );
            assert!(
                goodput <= prev_goodput,
                "goodput rose with the fault rate \
                 (policy={}, rate={rate}: {goodput} > {prev_goodput})",
                policy.name
            );
            prev_completed = completed;
            prev_goodput = goodput;
        }
    }
    for &rate in &rates[1..] {
        assert!(
            cell(rate, "retry").completed_fraction()
                >= cell(rate, "fail-fast").completed_fraction(),
            "bounded retries must not complete fewer requests than fail-fast at rate {rate}"
        );
    }

    // ---- Gate (c): zero silent corruptions — injected == detected ==
    // repaired everywhere, strictly positive once faults are on.
    for (rate, policy, report) in &rows {
        let integrity = report.integrity();
        assert_eq!(
            integrity.silent_corruptions(),
            0,
            "silent corruption escaped the checksums (rate={rate}, policy={policy})"
        );
        assert_eq!(
            integrity.corruptions_detected, integrity.corruptions_repaired,
            "a detected corruption was not repaired (rate={rate}, policy={policy})"
        );
        if *rate == 0.0 {
            assert_eq!(integrity.corruptions_injected, 0);
            assert_eq!(integrity.transfer_retries, 0);
        }
    }
    let faultiest = cell(rates[3], "retry");
    assert!(
        faultiest.integrity().corruptions_injected > 0,
        "the faultiest cell must actually inject corruptions"
    );
    assert!(
        faultiest.integrity().transfer_retries > 0,
        "the faultiest cell must actually retry transfers"
    );

    // ---- Gate (d): bit-identical repeat of the faultiest cell.
    let again = serve(FaultPlan::uniform(SEED, rates[3]), POLICIES[1]);
    assert_eq!(
        faultiest, &again,
        "repeated faulty runs must produce bit-identical reports"
    );

    if !json {
        let mut table = Table::new(vec![
            "Rate",
            "Policy",
            "Completed",
            "Tok/s",
            "Retries/req",
            "Corrupt inj/det/rep",
            "Xfer retries",
            "Backoff (µs)",
        ]);
        for (rate, policy, report) in &rows {
            let integrity = report.integrity();
            table.row(vec![
                fmt(*rate, 2),
                policy.to_string(),
                format!("{:.1}%", report.completed_fraction() * 100.0),
                fmt(report.throughput(), 0),
                fmt(report.retry_rate(), 2),
                format!(
                    "{}/{}/{}",
                    integrity.corruptions_injected,
                    integrity.corruptions_detected,
                    integrity.corruptions_repaired
                ),
                integrity.transfer_retries.to_string(),
                fmt(integrity.backoff_seconds * 1e6, 1),
            ]);
        }
        println!("{}", table.render());
        println!(
            "Parity: every completed stream in every cell (and a multi-threaded probe) \
             is byte-identical to the fault-free run."
        );
        println!(
            "Integrity: {} injected corruptions, all detected and repaired — zero silent.",
            faultiest.integrity().corruptions_injected
        );
        println!("Determinism: the faultiest cell repeated bit for bit.");
    }

    if json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"exp_faults\",\n");
        out.push_str(&format!("  \"smoke\": {},\n", smoke()));
        out.push_str(&format!(
            "  \"threads\": {},\n",
            rayon::current_num_threads()
        ));
        out.push_str("  \"workload\": {\n");
        out.push_str(&format!("    \"requests\": {},\n", num_requests()));
        out.push_str(&format!("    \"budget\": {BUDGET}\n"));
        out.push_str("  },\n");
        out.push_str("  \"stream_parity\": true,\n");
        out.push_str("  \"monotone_goodput\": true,\n");
        out.push_str("  \"silent_corruptions\": 0,\n");
        out.push_str("  \"sweep\": [\n");
        for (i, (rate, policy, report)) in rows.iter().enumerate() {
            let integrity = report.integrity();
            out.push_str(&format!(
                "    {{\"fault_rate\": {rate}, \"policy\": \"{policy}\", \
                 \"completed_fraction\": {:.6}, \"goodput_tok_s\": {:.3}, \
                 \"retry_rate\": {:.6}, \"cancelled_fraction\": {:.6}, \
                 \"corruptions_injected\": {}, \"corruptions_detected\": {}, \
                 \"corruptions_repaired\": {}, \"transfer_retries\": {}, \
                 \"retried_bytes\": {}, \"backoff_seconds\": {:.9}}}{}\n",
                report.completed_fraction(),
                report.throughput(),
                report.retry_rate(),
                report.cancelled_fraction(),
                integrity.corruptions_injected,
                integrity.corruptions_detected,
                integrity.corruptions_repaired,
                integrity.transfer_retries,
                integrity.retried_bytes,
                integrity.backoff_seconds,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"deterministic\": true\n");
        out.push_str("}\n");
        print!("{out}");
    }
}
