//! Experiment E1/E2 — Fig. 3a and Fig. 3b of the paper.
//!
//! Fig. 3a: the importance ranking of individual tokens drifts substantially
//! across decoding steps (motivating recallable compression).
//! Fig. 3b: important tokens are scattered across 16-token pages, so
//! page-granular recall (Quest) suffers internal fragmentation.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin fig03_motivation`

use clusterkv_metrics::Table;
use clusterkv_tensor::ops::attention_weights;
use clusterkv_tensor::vector::{argsort_descending, top_k_indices};
use clusterkv_workloads::{Episode, EpisodeConfig};

fn main() {
    let config = EpisodeConfig::default()
        .with_context_len(8192)
        .with_decode_steps(64)
        .with_num_topics(32)
        .with_seed(0x0303);
    let episode = Episode::generate(config);
    println!("# Fig. 3a — token importance ranking across decoding steps");
    println!(
        "(context length {}, 64 decoding steps)\n",
        episode.context_len()
    );

    // Pick three tokens with interesting trajectories: one important early,
    // one important late, one fluctuating — mirroring tokens 2048/3200/7168
    // of the paper's figure.
    let rankings: Vec<Vec<usize>> = (0..episode.decode_steps())
        .map(|s| {
            let w = attention_weights(&episode.queries[s], episode.keys.iter_rows());
            let order = argsort_descending(&w);
            let mut rank = vec![0usize; w.len()];
            for (r, &t) in order.iter().enumerate() {
                rank[t] = r;
            }
            rank
        })
        .collect();

    let early_topic = episode.query_topics[0];
    let late_topic = episode.query_topics[episode.decode_steps() - 1];
    let early_token = episode.topic_tokens(early_topic)[0];
    let late_token = episode.topic_tokens(late_topic)[0];
    let fluctuating = episode.topic_tokens(episode.query_topics[episode.decode_steps() / 2])[0];

    let mut table = Table::new(vec![
        "Step",
        "Token A (early)",
        "Token B (late)",
        "Token C (fluctuating)",
    ]);
    for s in (0..episode.decode_steps()).step_by(4) {
        table.row(vec![
            s.to_string(),
            rankings[s][early_token].to_string(),
            rankings[s][late_token].to_string(),
            rankings[s][fluctuating].to_string(),
        ]);
    }
    println!("{}", table.render());

    let drift_a =
        rankings[episode.decode_steps() - 1][early_token] as i64 - rankings[0][early_token] as i64;
    let drift_b =
        rankings[0][late_token] as i64 - rankings[episode.decode_steps() - 1][late_token] as i64;
    println!(
        "Token A loses {} ranks over the run; token B gains {} ranks — \
         importance is dynamic, so evicted tokens must be recallable.\n",
        drift_a, drift_b
    );

    // Fig. 3b: how many important tokens land in each 16-token page.
    println!("# Fig. 3b — internal fragmentation of important tokens (page size 16)\n");
    let page_size = 16;
    let step = 0;
    let w = attention_weights(&episode.queries[step], episode.keys.iter_rows());
    let top = top_k_indices(&w, 64);
    let mut per_page = std::collections::BTreeMap::new();
    for &t in &top {
        *per_page.entry(t / page_size).or_insert(0usize) += 1;
    }
    let pages_touched = per_page.len();
    let avg_per_page = top.len() as f64 / pages_touched as f64;
    let mut table = Table::new(vec!["Page", "Important tokens in page (of 16)"]);
    for (page, count) in per_page.iter().take(12) {
        table.row(vec![page.to_string(), count.to_string()]);
    }
    println!("{}", table.render());
    println!(
        "The top-64 tokens are spread over {pages_touched} pages \
         ({avg_per_page:.1} important tokens per 16-token page on average): \
         recalling whole pages wastes most of the budget on unimportant tokens."
    );
}
