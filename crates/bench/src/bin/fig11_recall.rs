//! Experiments E6/E7 — Fig. 11a and Fig. 11b of the paper.
//!
//! Fig. 11a: recall rate of the true top-`B` tokens for Quest, InfiniGen and
//! ClusterKV as the budget varies from 256 to 2048.
//! Fig. 11b: ClusterKV ablation over the clustering distance metric
//! (cosine / L2 / inner product) and the number of prefill clusters `C0`.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin fig11_recall`

use clusterkv::DistanceMetric;
use clusterkv_bench::{
    clusterkv_config_for_ablation, evaluate_clusterkv_variant, evaluate_sweep, Method,
};
use clusterkv_metrics::{fmt, Table};
use clusterkv_workloads::{Episode, EpisodeConfig};

const BUDGETS: [usize; 8] = [256, 512, 768, 1024, 1280, 1536, 1792, 2048];
/// NarrativeQA-style sample (the paper uses a 32k sample; scaled to 8k here).
const CONTEXT_LEN: usize = 8192;

fn narrativeqa_episode() -> Episode {
    Episode::generate(
        EpisodeConfig::default()
            .with_context_len(CONTEXT_LEN)
            .with_decode_steps(48)
            .with_num_topics(40)
            .with_seed(0x11A),
    )
}

fn main() {
    let episode = narrativeqa_episode();

    println!("# Fig. 11a — recall rate of important tokens vs budget\n");
    let mut table = Table::new(vec!["Budget", "Quest", "InfiniGen", "ClusterKV"]);
    // Each method's eight budgets run concurrently; results are identical to
    // the sequential sweep at any thread count.
    let recalls: Vec<Vec<f64>> = Method::compressed()
        .map(|method| {
            evaluate_sweep(method, &episode, &BUDGETS)
                .iter()
                .map(|r| r.mean_recall())
                .collect()
        })
        .into_iter()
        .collect();
    for (bi, &budget) in BUDGETS.iter().enumerate() {
        let mut cells = vec![budget.to_string()];
        for per_method in &recalls {
            cells.push(fmt(per_method[bi], 3));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!("Paper reference: ClusterKV achieves the highest recall at every budget.\n");

    println!("# Fig. 11b — ClusterKV ablation (distance metric and C0)\n");
    let mut table = Table::new(vec![
        "Configuration",
        "Recall @512",
        "Recall @1024",
        "Recall @2048",
    ]);

    // Distance-metric ablation at the paper's default C0 = L/80.
    let default_c0 = CONTEXT_LEN / 80;
    for metric in DistanceMetric::all() {
        let cfg = clusterkv_config_for_ablation(metric, default_c0, CONTEXT_LEN);
        let mut cells = vec![format!("{metric} (C0={default_c0})")];
        for budget in [512, 1024, 2048] {
            let r = evaluate_clusterkv_variant(cfg, &episode, budget);
            cells.push(fmt(r.mean_recall(), 3));
        }
        table.row(cells);
    }

    // Cluster-count ablation with cosine distance. The paper sweeps
    // C0 ∈ {200, 400, 600, 800} on a 32k context; the same L/C0 ratios are
    // used here on the scaled context.
    for paper_c0 in [200usize, 400, 600, 800] {
        let c0 = paper_c0 * CONTEXT_LEN / 32_768;
        let cfg = clusterkv_config_for_ablation(DistanceMetric::Cosine, c0, CONTEXT_LEN);
        let mut cells = vec![format!("cosine, C0={c0} (paper C0={paper_c0})")];
        for budget in [512, 1024, 2048] {
            let r = evaluate_clusterkv_variant(cfg, &episode, budget);
            cells.push(fmt(r.mean_recall(), 3));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "Paper reference: cosine similarity outperforms L2 and inner product; increasing C0 \
         improves recall with diminishing returns beyond C0 = 400 (= L/80)."
    );
}
