//! Experiments E9/E10 — Fig. 13 of the paper.
//!
//! (a) Latency of ClusterKV vs InfiniGen (and InfiniGen with full KV) on an
//!     OPT-6.7B-class configuration with a 256-token budget (P = 2k).
//! (b) Latency of ClusterKV vs Quest on a Llama-3.1-8B-class configuration
//!     with a 1k budget (P = 8k/16k/32k).
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin fig13_comparison`

use clusterkv_kvcache::DeviceModel;
use clusterkv_metrics::{fmt, Table};
use clusterkv_model::latency::StepCost;
use clusterkv_model::{LatencyModel, ModelPreset};

/// Token-level hit rate of the cluster cache with R = 1 (§V-C).
const CACHE_HIT_RATE: f64 = 0.63;

fn clusterkv_cost(budget: usize) -> impl Fn(usize) -> StepCost {
    move |context_len: usize| StepCost {
        scored_vectors_per_head: (context_len as f64 / 80.0).max(1.0),
        attended_tokens: budget as f64,
        transferred_tokens_per_head: budget as f64 * (1.0 - CACHE_HIT_RATE),
    }
}

/// InfiniGen scores every previous token with partial (quarter-width) keys
/// and fetches the selected KV from CPU memory each step (no cluster cache).
fn infinigen_cost(budget: usize) -> impl Fn(usize) -> StepCost {
    move |context_len: usize| StepCost {
        scored_vectors_per_head: context_len as f64 * 0.25,
        attended_tokens: budget as f64,
        transferred_tokens_per_head: budget as f64,
    }
}

/// Quest keeps the KV cache in GPU memory and scores one page representation
/// per 16 tokens; nothing crosses PCIe.
fn quest_cost(budget: usize) -> impl Fn(usize) -> StepCost {
    move |context_len: usize| StepCost {
        scored_vectors_per_head: context_len as f64 / 16.0,
        attended_tokens: budget as f64,
        transferred_tokens_per_head: 0.0,
    }
}

fn main() {
    println!("# Fig. 13a — ClusterKV vs InfiniGen (OPT-6.7B class, budget 256, P = 2k)\n");
    let opt = LatencyModel::new(
        ModelPreset::Opt6_7b.config(),
        DeviceModel::offload_constrained(),
    );
    let mut table = Table::new(vec![
        "D",
        "InfiniGen (Full) (s)",
        "InfiniGen (s)",
        "ClusterKV (s)",
        "Speedup",
    ]);
    for d in [128usize, 256] {
        let p = 2048;
        // InfiniGen (Full): full KV held in CPU memory and streamed every step.
        let infinigen_full = opt.run(p, d, None, |ctx| StepCost {
            scored_vectors_per_head: ctx as f64 * 0.25,
            attended_tokens: ctx as f64,
            transferred_tokens_per_head: ctx as f64,
        });
        let infinigen = opt.run(p, d, None, infinigen_cost(256));
        let clusterkv = opt.run(p, d, Some((p / 80, 10)), clusterkv_cost(256));
        table.row(vec![
            d.to_string(),
            fmt(infinigen_full.total.get(), 2),
            fmt(infinigen.total.get(), 2),
            fmt(clusterkv.total.get(), 2),
            format!("{}x", fmt(infinigen.total.get() / clusterkv.total.get(), 2)),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference: ClusterKV is 2.3x faster than InfiniGen on average.\n");

    println!("# Fig. 13b — ClusterKV vs Quest (Llama-3.1-8B class, budget 1k)\n");
    let llama = LatencyModel::new(ModelPreset::Llama31_8b.config(), DeviceModel::ada6000());
    let mut table = Table::new(vec!["P", "D", "Quest (s)", "ClusterKV (s)", "Deviation"]);
    for &p in &[8_192usize, 16_384, 32_768] {
        for &d in &[256usize, 512] {
            let quest = llama.run(p, d, None, quest_cost(1024));
            let clusterkv = llama.run(p, d, Some((p / 80, 10)), clusterkv_cost(1024));
            let deviation = (clusterkv.total.get() - quest.total.get()) / quest.total.get();
            table.row(vec![
                format!("{}k", p / 1024),
                d.to_string(),
                fmt(quest.total.get(), 2),
                fmt(clusterkv.total.get(), 2),
                format!("{:+.1}%", deviation * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Paper reference: ClusterKV matches Quest's latency within ~5% while delivering \
         significantly higher accuracy."
    );
}
