//! Experiments E9/E10 — Fig. 13 of the paper.
//!
//! (a) Latency of ClusterKV vs InfiniGen (and InfiniGen with full KV) on an
//!     OPT-6.7B-class configuration with a 256-token budget (P = 2k).
//! (b) Latency of ClusterKV vs Quest on a Llama-3.1-8B-class configuration
//!     with a 1k budget (P = 8k/16k/32k).
//!
//! Recall traffic is *measured* through the tiered cluster cache at each
//! method's own paging granularity — whole clusters for ClusterKV, single
//! tokens for InfiniGen — with both given the same GPU cache capacity.
//! Quest deploys with its full KV in GPU memory (capacity ≥ full KV), so it
//! recalls nothing, matching its original system.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin fig13_comparison`

use clusterkv::{ClusterCache, ClusterCacheConfig, ClusterKvConfig, ClusterKvFactory};
use clusterkv_baselines::InfiniGenFactory;
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_kvcache::DeviceModel;
use clusterkv_metrics::{fmt, Table};
use clusterkv_model::latency::StepCost;
use clusterkv_model::policy::{HeadContext, SelectorFactory};
use clusterkv_model::{LatencyModel, ModelPreset};
use clusterkv_workloads::{run_episode_cached, Episode, EpisodeConfig};

/// Measured recalled tokens per step for a selector against a cache of the
/// given capacity.
fn recalled_per_step(
    factory: &dyn SelectorFactory,
    episode: &Episode,
    budget: usize,
    capacity: Bytes,
) -> f64 {
    let mut selector = factory.create(HeadContext {
        layer: 2,
        head: 0,
        head_dim: episode.config.head_dim,
    });
    let mut cache = ClusterCache::new(ClusterCacheConfig::new(capacity, episode.config.head_dim));
    let result = run_episode_cached(episode, selector.as_mut(), Budget::new(budget), &mut cache);
    result.stats.transfer.tokens_moved as f64 / episode.decode_steps() as f64
}

fn clusterkv_cost(budget: usize, transferred_per_step: f64) -> impl Fn(usize) -> StepCost {
    move |context_len: usize| StepCost {
        scored_vectors_per_head: (context_len as f64 / 80.0).max(1.0),
        attended_tokens: budget as f64,
        transferred_tokens_per_head: transferred_per_step,
        transferred_compressed_bytes: 0.0,
        staged_transfer_bytes: 0.0,
        retried_transfer_bytes: 0.0,
        retry_backoff_seconds: 0.0,
    }
}

/// InfiniGen scores every previous token with partial (quarter-width) keys;
/// its per-token recalls are measured against the same GPU cache capacity.
fn infinigen_cost(budget: usize, transferred_per_step: f64) -> impl Fn(usize) -> StepCost {
    move |context_len: usize| StepCost {
        scored_vectors_per_head: context_len as f64 * 0.25,
        attended_tokens: budget as f64,
        transferred_tokens_per_head: transferred_per_step,
        transferred_compressed_bytes: 0.0,
        staged_transfer_bytes: 0.0,
        retried_transfer_bytes: 0.0,
        retry_backoff_seconds: 0.0,
    }
}

/// Quest keeps the KV cache in GPU memory and scores one page representation
/// per 16 tokens; nothing crosses PCIe.
fn quest_cost(budget: usize) -> impl Fn(usize) -> StepCost {
    move |context_len: usize| StepCost {
        scored_vectors_per_head: context_len as f64 / 16.0,
        attended_tokens: budget as f64,
        transferred_tokens_per_head: 0.0,
        transferred_compressed_bytes: 0.0,
        staged_transfer_bytes: 0.0,
        retried_transfer_bytes: 0.0,
        retry_backoff_seconds: 0.0,
    }
}

fn main() {
    println!("# Fig. 13a — ClusterKV vs InfiniGen (OPT-6.7B class, budget 256, P = 2k)\n");
    let opt = LatencyModel::new(
        ModelPreset::Opt6_7b.config(),
        DeviceModel::offload_constrained(),
    );
    let opt_episode = Episode::generate(
        EpisodeConfig::default()
            .with_context_len(2048)
            .with_decode_steps(64)
            .with_seed(0xF13A),
    );
    // ClusterKV keeps the clusters of recent selections resident (§IV-D);
    // InfiniGen keeps no persistent selected-KV cache — its speculative
    // prefetch re-streams the selected tokens from host DRAM every step
    // (the transfer is overlapped, but the bytes still cross PCIe), so its
    // per-token recalls are measured against a zero-capacity cache.
    let ckv_capacity = ClusterCacheConfig::for_recency_window(
        1,
        256 + ClusterKvConfig::default().tokens_per_cluster,
        opt_episode.config.head_dim,
    )
    .gpu_capacity;
    let ckv_recall = recalled_per_step(
        &ClusterKvFactory::new(ClusterKvConfig::default()),
        &opt_episode,
        256,
        ckv_capacity,
    );
    let ig_recall = recalled_per_step(&InfiniGenFactory::default(), &opt_episode, 256, Bytes(0));
    println!(
        "measured recall per step: ClusterKV {} tokens (cluster granularity, {ckv_capacity} \
         cache), InfiniGen {} tokens (token granularity, no persistent cache)\n",
        fmt(ckv_recall, 0),
        fmt(ig_recall, 0),
    );
    let mut table = Table::new(vec![
        "D",
        "InfiniGen (Full) (s)",
        "InfiniGen (s)",
        "ClusterKV (s)",
        "Speedup",
    ]);
    for d in [128usize, 256] {
        let p = 2048;
        // InfiniGen (Full): full KV held in CPU memory and streamed every step.
        let infinigen_full = opt.run(p, d, None, |ctx| StepCost {
            scored_vectors_per_head: ctx as f64 * 0.25,
            attended_tokens: ctx as f64,
            transferred_tokens_per_head: ctx as f64,
            transferred_compressed_bytes: 0.0,
            staged_transfer_bytes: 0.0,
            retried_transfer_bytes: 0.0,
            retry_backoff_seconds: 0.0,
        });
        let infinigen = opt.run(p, d, None, infinigen_cost(256, ig_recall));
        let clusterkv = opt.run(p, d, Some((p / 80, 10)), clusterkv_cost(256, ckv_recall));
        table.row(vec![
            d.to_string(),
            fmt(infinigen_full.total.get(), 2),
            fmt(infinigen.total.get(), 2),
            fmt(clusterkv.total.get(), 2),
            format!("{}x", fmt(infinigen.total.get() / clusterkv.total.get(), 2)),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference: ClusterKV is 2.3x faster than InfiniGen on average.\n");

    println!("# Fig. 13b — ClusterKV vs Quest (Llama-3.1-8B class, budget 1k)\n");
    let llama = LatencyModel::new(ModelPreset::Llama31_8b.config(), DeviceModel::ada6000());
    let llama_episode = Episode::generate(
        EpisodeConfig::default()
            .with_context_len(8192)
            .with_decode_steps(64)
            .with_num_topics(40)
            .with_seed(0xF13B),
    );
    let ckv_recall_1k = recalled_per_step(
        &ClusterKvFactory::new(ClusterKvConfig::default()),
        &llama_episode,
        1024,
        ClusterCacheConfig::for_recency_window(
            1,
            1024 + ClusterKvConfig::default().tokens_per_cluster,
            llama_episode.config.head_dim,
        )
        .gpu_capacity,
    );
    let mut table = Table::new(vec!["P", "D", "Quest (s)", "ClusterKV (s)", "Deviation"]);
    for &p in &[8_192usize, 16_384, 32_768] {
        for &d in &[256usize, 512] {
            let quest = llama.run(p, d, None, quest_cost(1024));
            let clusterkv = llama.run(
                p,
                d,
                Some((p / 80, 10)),
                clusterkv_cost(1024, ckv_recall_1k),
            );
            let deviation = (clusterkv.total.get() - quest.total.get()) / quest.total.get();
            table.row(vec![
                format!("{}k", p / 1024),
                d.to_string(),
                fmt(quest.total.get(), 2),
                fmt(clusterkv.total.get(), 2),
                format!("{:+.1}%", deviation * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Paper reference: ClusterKV matches Quest's latency within ~5% while delivering \
         significantly higher accuracy."
    );
}
