//! Experiment E12 — thread scaling of batched multi-session decode.
//!
//! CentroidKV-style systems hit serving-grade latency by parallelising the
//! "score, rank, gather" decode loop across heads and sequences. This
//! experiment measures what the rayon-backed `ServeEngine` actually delivers:
//! an 8-session batched decode (ClusterKV policy, bounded cluster cache) is
//! run to completion at 1, 2, 4, … worker threads (`RAYON_NUM_THREADS`), and
//! each run's wall-clock time is reported next to its speedup over the
//! single-thread run.
//!
//! **Parity is asserted, not assumed**: every run's token streams, cache
//! hit/miss counts, recalled bytes and modeled decode times must be
//! byte-identical to the 1-thread reference — the experiment aborts
//! otherwise. Speedup is a property of the host (on a multicore machine the
//! session fan-out is embarrassingly parallel; a 1-core container times-lices
//! the workers and shows ~1×), while parity must hold everywhere.
//!
//! Run with: `cargo run --release -p clusterkv-bench --bin exp_scaling`

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_metrics::{fmt, Table};
use clusterkv_model::{ModelConfig, ServeEngine, SessionId};
use std::time::{Duration, Instant};

const NUM_SESSIONS: usize = 8;
const PROMPT_LEN: usize = 192;
const DECODE_STEPS: usize = 24;
const BUDGET: usize = 48;

/// A model large enough that per-session decode work dominates the pool's
/// per-batch coordination cost, small enough to run in seconds.
fn model_config() -> ModelConfig {
    ModelConfig {
        num_layers: 4,
        num_heads: 4,
        num_kv_heads: 2,
        head_dim: 32,
        ffn_dim: 256,
        vocab_size: 512,
        max_context: PROMPT_LEN + DECODE_STEPS + 8,
        dense_layers: 1,
    }
}

fn clusterkv_factory() -> ClusterKvFactory {
    ClusterKvFactory::new(
        ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(16)
            .with_decode_cluster_period(8)
            .with_decode_new_clusters(2),
    )
}

fn prompts() -> Vec<Vec<usize>> {
    (0..NUM_SESSIONS)
        .map(|s| {
            (0..PROMPT_LEN)
                .map(|i| (i * (3 + s) + 11 * s + 1) % 512)
                .collect()
        })
        .collect()
}

/// Everything one run produces: timings plus the observables that must be
/// invariant to the thread count.
struct RunOutcome {
    prefill: Duration,
    decode: Duration,
    streams: Vec<Vec<usize>>,
    hits: u64,
    misses: u64,
    bytes_recalled: u64,
    modeled: f64,
}

fn run_at(threads: usize) -> RunOutcome {
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let factory = clusterkv_factory();
    let mut engine = ServeEngine::builder(model_config())
        .synthetic_weights(0x5CA1E)
        .budget(Budget::new(BUDGET))
        .policy(Box::new(factory))
        .kv_cache_capacity(Bytes(1 << 18))
        .build()
        .expect("valid scaling config");
    let ids: Vec<SessionId> = (0..NUM_SESSIONS)
        .map(|_| engine.create_session().expect("session capacity"))
        .collect();

    let start = Instant::now();
    for (id, prompt) in ids.iter().zip(prompts()) {
        engine.prefill(*id, &prompt).expect("prefill");
    }
    let prefill = start.elapsed();

    let mut streams = vec![Vec::new(); NUM_SESSIONS];
    let start = Instant::now();
    for _ in 0..DECODE_STEPS {
        let outs = engine.decode_batch(&ids).expect("decode");
        for (stream, out) in streams.iter_mut().zip(&outs) {
            stream.push(out.next_token);
        }
    }
    let decode = start.elapsed();

    let (mut hits, mut misses, mut bytes_recalled, mut modeled) = (0u64, 0u64, 0u64, 0f64);
    for &id in &ids {
        let report = engine.release(id).expect("release");
        hits += report.stats.cache.hits;
        misses += report.stats.cache.misses;
        bytes_recalled += report.bytes_recalled().0;
        modeled += report.modeled_decode_time.get();
    }
    RunOutcome {
        prefill,
        decode,
        streams,
        hits,
        misses,
        bytes_recalled,
        modeled,
    }
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize, 2, 4];
    if host_cores > 4 && !thread_counts.contains(&host_cores) {
        thread_counts.push(host_cores);
    }

    println!("# Thread scaling — {NUM_SESSIONS}-session batched decode");
    println!(
        "\nmodel: {} layers x {} heads, head_dim {}; prompt {PROMPT_LEN}, \
         {DECODE_STEPS} decode steps, budget {BUDGET}; host cores: {host_cores}\n",
        model_config().num_layers,
        model_config().num_heads,
        model_config().head_dim,
    );

    let runs: Vec<(usize, RunOutcome)> = thread_counts.iter().map(|&t| (t, run_at(t))).collect();
    std::env::remove_var("RAYON_NUM_THREADS");

    // Parity gate: every observable must match the 1-thread reference.
    let reference = &runs[0].1;
    for (threads, run) in &runs[1..] {
        assert_eq!(
            run.streams, reference.streams,
            "token streams diverged at {threads} threads"
        );
        assert_eq!(
            (run.hits, run.misses, run.bytes_recalled),
            (reference.hits, reference.misses, reference.bytes_recalled),
            "cache accounting diverged at {threads} threads"
        );
        assert_eq!(
            run.modeled.to_bits(),
            reference.modeled.to_bits(),
            "modeled decode time diverged at {threads} threads"
        );
    }

    let mut table = Table::new(vec![
        "Threads",
        "Prefill (ms)",
        "Decode (ms)",
        "Decode speedup",
        "Tok/s (decode)",
    ]);
    let base_decode = reference.decode.as_secs_f64();
    for (threads, run) in &runs {
        let decode_s = run.decode.as_secs_f64();
        table.row(vec![
            threads.to_string(),
            fmt(run.prefill.as_secs_f64() * 1e3, 1),
            fmt(decode_s * 1e3, 1),
            format!("{}x", fmt(base_decode / decode_s, 2)),
            fmt((NUM_SESSIONS * DECODE_STEPS) as f64 / decode_s, 0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Parity: token streams, cache hits/misses ({}/{}), recalled bytes ({}) and modeled \
         decode time are byte-identical across all thread counts.",
        reference.hits, reference.misses, reference.bytes_recalled
    );
    if host_cores < 4 {
        println!(
            "Note: this host exposes {host_cores} core(s); speedups above are \
             time-sliced. Run on >= 4 cores to observe the >1.5x target at 4 threads."
        );
    }
}
