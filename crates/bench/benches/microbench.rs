//! Criterion micro-benchmarks backing the efficiency discussion of the paper
//! (§III-D "Efficiency Concerns" and the kernel design of §IV):
//!
//! * semantic clustering throughput vs context length (Concern 1),
//! * cluster selection & indexing vs number of clusters (Concern 2),
//! * Quest page-metadata scoring (the baseline ClusterKV's selection cost is
//!   compared against),
//! * per-step top-k: partial selection vs the previous full argsort,
//! * cluster-cache lookups,
//! * the blocked kernel layer vs its scalar references (DESIGN.md §6):
//!   centroid scoring, Gram-trick k-means assignment and fused
//!   gather+attend, each at n ∈ {512, 2048, 8192}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clusterkv::{
    select_clusters, ClusterCache, ClusterCacheConfig, ClusterKvConfig, DistanceMetric, KMeans,
    PageRequest, SemanticClustering,
};
use clusterkv_baselines::QuestFactory;
use clusterkv_kvcache::types::Budget;
use clusterkv_model::policy::{HeadContext, ObserveEvent, SelectionRequest, SelectorFactory};
use clusterkv_tensor::rng::{gaussian_vec, seeded};
use clusterkv_tensor::Matrix;

fn random_keys(n: usize, dim: usize, seed: u64) -> Matrix {
    let mut rng = seeded(seed);
    Matrix::from_rows(
        (0..n)
            .map(|_| gaussian_vec(&mut rng, dim, 0.0, 1.0))
            .collect(),
    )
    .unwrap()
}

/// Concern 1: clustering cost `O(n_i · C · L · d)` vs context length.
fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("semantic_clustering");
    group.sample_size(10);
    for &len in &[1024usize, 4096, 8192] {
        let keys = random_keys(len, 64, 7);
        let c0 = (len / 80).max(4);
        group.bench_with_input(BenchmarkId::new("kmeans_c0", len), &keys, |b, keys| {
            b.iter(|| {
                let km = KMeans::new(DistanceMetric::Cosine, 10, 3);
                black_box(km.fit(keys, c0))
            })
        });
    }
    group.finish();
}

/// Concern 2: selection + indexing cost vs number of clusters.
fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_selection");
    for &c0 in &[100usize, 200, 400, 800] {
        let len = 8192;
        let config = ClusterKvConfig::default().with_tokens_per_cluster((len / c0).max(1));
        let mut clustering = SemanticClustering::new(config, 64);
        clustering.prefill(&random_keys(len, 64, 11));
        let query = gaussian_vec(&mut seeded(13), 64, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("select", c0), &clustering, |b, cl| {
            b.iter(|| black_box(select_clusters(&query, cl, Budget::new(1024))))
        });
    }
    group.finish();
}

/// Quest page-metadata scoring for the same context length (the selection
/// cost ClusterKV's centroid scoring is compared against in §III-D).
fn bench_quest_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("quest_selection");
    let len = 8192;
    let keys = random_keys(len, 64, 17);
    let factory = QuestFactory::default();
    let mut selector = factory.create(HeadContext {
        layer: 0,
        head: 0,
        head_dim: 64,
    });
    selector.observe(ObserveEvent::Prefill { keys: &keys });
    let query = gaussian_vec(&mut seeded(19), 64, 0.0, 1.0);
    group.bench_function("page_scoring_8k", |b| {
        b.iter(|| black_box(selector.plan(SelectionRequest::new(&query, len, Budget::new(1024)))))
    });
    group.finish();
}

/// Per-step top-k cost: `select_nth_unstable_by` partial selection (the
/// current `top_k_indices`) vs the previous full `O(n log n)` argsort. Quest
/// and H2O rank every page/token each decode step, so for small `k` over a
/// long context the partial selection is the difference between `O(n)` and
/// a full sort per step.
fn bench_top_k(c: &mut Criterion) {
    use clusterkv_tensor::vector::top_k_indices;
    let mut group = c.benchmark_group("top_k");
    let n = 8192;
    let scores = gaussian_vec(&mut seeded(23), n, 0.0, 1.0);
    // The pre-fix reference: argsort everything, keep the prefix.
    let full_argsort_top_k = |s: &[f32], k: usize| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..s.len()).collect();
        idx.sort_by(|&i, &j| s[j].total_cmp(&s[i]).then(i.cmp(&j)));
        idx.truncate(k);
        idx
    };
    for &k in &[16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("full_argsort", k),
            &scores,
            |b, s: &Vec<f32>| b.iter(|| black_box(full_argsort_top_k(s, k))),
        );
        group.bench_with_input(
            BenchmarkId::new("select_nth", k),
            &scores,
            |b, s: &Vec<f32>| b.iter(|| black_box(top_k_indices(s, k))),
        );
    }
    group.finish();
}

/// Tiered cluster-cache lookup and update cost.
fn bench_cache(c: &mut Criterion) {
    use clusterkv_kvcache::types::{Bytes, HeadId, LayerId};
    let mut group = c.benchmark_group("cluster_cache");
    let selections: Vec<Vec<PageRequest>> = (0..64)
        .map(|i| {
            ((i % 7)..(i % 7 + 20))
                .map(|p| PageRequest::new(p, p + 10))
                .collect()
        })
        .collect();
    group.bench_function("access_lru", |b| {
        b.iter(|| {
            // Room for roughly one step's worth of pages (LRU churn).
            let mut cache = ClusterCache::new(ClusterCacheConfig::new(Bytes(20 * 20 * 256), 64));
            for sel in &selections {
                black_box(cache.access(LayerId(0), HeadId(0), sel));
            }
            black_box(cache.stats())
        })
    });
    group.finish();
}

/// Blocked centroid scoring (`matvec_t_into` into a warm workspace) vs the
/// scalar per-row `dot`-and-collect reference, over the row counts the
/// decode path sees (centroid tables and full key matrices).
fn bench_centroid_scoring_kernels(c: &mut Criterion) {
    use clusterkv_tensor::kernels::{matvec_t_into, matvec_t_reference, Workspace};
    let mut group = c.benchmark_group("centroid_scoring");
    for &n in &[512usize, 2048, 8192] {
        let m = random_keys(n, 64, 31);
        let q = gaussian_vec(&mut seeded(32), 64, 0.0, 1.0);
        let mut ws = Workspace::new();
        matvec_t_into(&m, &q, &mut ws.scores);
        group.bench_with_input(BenchmarkId::new("blocked", n), &m, |b, m| {
            b.iter(|| {
                matvec_t_into(m, &q, &mut ws.scores);
                black_box(ws.scores.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &m, |b, m| {
            b.iter(|| black_box(matvec_t_reference(m, &q)))
        });
    }
    group.finish();
}

/// Gram-trick k-means assignment (cached norms, blocked matvec per row) vs
/// the per-pair `metric.distance` reference sweep.
fn bench_kmeans_assignment_kernels(c: &mut Criterion) {
    use clusterkv::{assign_labels, assign_labels_reference};
    use clusterkv_tensor::kernels::{row_norms_sq_into, Workspace};
    let mut group = c.benchmark_group("kmeans_assignment");
    group.sample_size(10);
    for &n in &[512usize, 2048, 8192] {
        let keys = random_keys(n, 64, 37);
        let k = (n / 80).max(4);
        let picks: Vec<usize> = (0..k).map(|c| c * n / k).collect();
        let centroids = keys.select_rows(&picks);
        let mut norms = Vec::new();
        row_norms_sq_into(&keys, &mut norms);
        let mut ws = Workspace::new();
        group.bench_with_input(BenchmarkId::new("blocked_gram", n), &keys, |b, keys| {
            b.iter(|| {
                black_box(assign_labels(
                    DistanceMetric::Cosine,
                    keys,
                    &norms,
                    &centroids,
                    &mut ws,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &keys, |b, keys| {
            b.iter(|| {
                black_box(assign_labels_reference(
                    DistanceMetric::Cosine,
                    keys,
                    &centroids,
                ))
            })
        });
    }
    group.finish();
}

/// Fused gather + attend through a reusable workspace vs the allocating
/// scalar pipeline, over a budget-sized selection of a long context.
fn bench_gather_attend_kernels(c: &mut Criterion) {
    use clusterkv_kvcache::KvStore;
    use clusterkv_model::attention::{attend_selected_reference, attend_selected_ws};
    use clusterkv_tensor::kernels::Workspace;
    let mut group = c.benchmark_group("gather_attend");
    for &n in &[512usize, 2048, 8192] {
        let keys = random_keys(n, 64, 41);
        let values = random_keys(n, 64, 43);
        let mut store = KvStore::new(64);
        store.append_batch(&keys, &values);
        let q = gaussian_vec(&mut seeded(47), 64, 0.0, 1.0);
        // A budget-sized, scattered selection (every 8th token).
        let indices: Vec<usize> = (0..n).step_by(8).collect();
        let mut ws = Workspace::new();
        attend_selected_ws(&store, &q, &indices, &mut ws);
        group.bench_with_input(BenchmarkId::new("blocked_ws", n), &store, |b, store| {
            b.iter(|| {
                attend_selected_ws(store, &q, &indices, &mut ws);
                black_box(ws.out.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &store, |b, store| {
            b.iter(|| black_box(attend_selected_reference(store, &q, &indices)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_clustering,
    bench_selection,
    bench_quest_selection,
    bench_top_k,
    bench_cache,
    bench_centroid_scoring_kernels,
    bench_kmeans_assignment_kernels,
    bench_gather_attend_kernels
);
criterion_main!(benches);
