//! Synthetic semantic-space episodes.
//!
//! An [`Episode`] is everything one attention head sees during an inference
//! run: the prefill keys/values, a query per decoding step, and optionally a
//! new key/value per generated token. The generator reproduces the structural
//! properties the paper's experiments rely on:
//!
//! * **Topical clusters** — tokens belong to a small number of topics whose
//!   key vectors point in similar directions (the premise of Fig. 2: tokens
//!   close in semantic space have similar attention weights).
//! * **Attention sinks** — the first few tokens have their own outlying
//!   direction and large magnitude (§III-B).
//! * **Outlier channels** — a few channels of every key are amplified,
//!   the property that motivates cosine distance (§III-B).
//! * **Dynamic importance** — the topical focus of the query drifts across
//!   decoding steps, so the set of important tokens changes over time
//!   (Fig. 3a); non-recallable methods lose exactly these tokens.

use clusterkv_tensor::rng::{derive_seed, gaussian_vec, seeded};
use clusterkv_tensor::vector::normalize;
use clusterkv_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of an episode generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeConfig {
    /// Number of prefill (prompt) tokens.
    pub context_len: usize,
    /// Number of decoding steps (queries).
    pub decode_steps: usize,
    /// Head dimensionality.
    pub head_dim: usize,
    /// Number of topics (semantic clusters) in the context.
    pub num_topics: usize,
    /// Number of attention-sink tokens at the start of the context.
    pub sink_tokens: usize,
    /// Number of amplified outlier channels.
    pub outlier_channels: usize,
    /// Average number of decoding steps between changes of the query's
    /// topical focus (smaller = faster importance drift).
    pub drift_period: usize,
    /// Standard deviation of the Gaussian noise added to keys and queries.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EpisodeConfig {
    fn default() -> Self {
        Self {
            context_len: 2048,
            decode_steps: 64,
            head_dim: 64,
            num_topics: 24,
            sink_tokens: 16,
            outlier_channels: 2,
            drift_period: 8,
            noise: 0.25,
            seed: 0xC1A5,
        }
    }
}

impl EpisodeConfig {
    /// Builder-style setter for the context length.
    pub fn with_context_len(mut self, context_len: usize) -> Self {
        self.context_len = context_len;
        self
    }

    /// Builder-style setter for the number of decoding steps.
    pub fn with_decode_steps(mut self, decode_steps: usize) -> Self {
        self.decode_steps = decode_steps;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the number of topics.
    pub fn with_num_topics(mut self, num_topics: usize) -> Self {
        self.num_topics = num_topics;
        self
    }
}

/// A generated attention episode for a single head.
#[derive(Debug, Clone)]
pub struct Episode {
    /// Configuration the episode was generated from.
    pub config: EpisodeConfig,
    /// Prefill keys (`context_len × head_dim`).
    pub keys: Matrix,
    /// Prefill values (`context_len × head_dim`).
    pub values: Matrix,
    /// One query per decoding step.
    pub queries: Vec<Vec<f32>>,
    /// Key of the token generated at each decoding step (appended to the
    /// context as decoding progresses).
    pub decode_keys: Vec<Vec<f32>>,
    /// Value of the token generated at each decoding step.
    pub decode_values: Vec<Vec<f32>>,
    /// Topic id of every prefill token (sinks have topic `usize::MAX`).
    pub token_topics: Vec<usize>,
    /// Topic the query focuses on at each decoding step.
    pub query_topics: Vec<usize>,
}

impl Episode {
    /// Generate an episode from a configuration. Deterministic for a fixed
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if `num_topics == 0` or `head_dim == 0`.
    pub fn generate(config: EpisodeConfig) -> Self {
        assert!(config.num_topics > 0, "num_topics must be > 0");
        assert!(config.head_dim > 0, "head_dim must be > 0");
        let mut rng = seeded(config.seed);
        let d = config.head_dim;

        // Topic directions: random unit vectors with shared outlier channels.
        let mut outlier_scale = vec![1.0f32; d];
        for c in 0..config.outlier_channels.min(d) {
            outlier_scale[(c * 7 + 3) % d] = 4.0;
        }
        let topics: Vec<Vec<f32>> = (0..config.num_topics)
            .map(|t| {
                let mut v = gaussian_vec(
                    &mut seeded(derive_seed(config.seed, 0x70 + t as u64)),
                    d,
                    0.0,
                    1.0,
                );
                normalize(&mut v);
                for (x, s) in v.iter_mut().zip(&outlier_scale) {
                    *x *= s;
                }
                v
            })
            .collect();

        // Sink direction: distinct from every topic, large magnitude.
        let mut sink_dir = gaussian_vec(&mut seeded(derive_seed(config.seed, 0x51)), d, 0.0, 1.0);
        normalize(&mut sink_dir);
        for x in sink_dir.iter_mut() {
            *x *= 3.0;
        }

        // Prefill keys/values.
        let mut key_rows = Vec::with_capacity(config.context_len);
        let mut value_rows = Vec::with_capacity(config.context_len);
        let mut token_topics = Vec::with_capacity(config.context_len);
        for i in 0..config.context_len {
            if i < config.sink_tokens {
                let noise = gaussian_vec(&mut rng, d, 0.0, config.noise * 0.5);
                key_rows.push(sink_dir.iter().zip(&noise).map(|(s, n)| s + n).collect());
                value_rows.push(gaussian_vec(&mut rng, d, 0.0, 0.5));
                token_topics.push(usize::MAX);
                continue;
            }
            let topic = rng.gen_range(0..config.num_topics);
            let noise = gaussian_vec(&mut rng, d, 0.0, config.noise);
            let key: Vec<f32> = topics[topic]
                .iter()
                .zip(&noise)
                .map(|(t, n)| t * 2.0 + n)
                .collect();
            // Values encode the topic so retrieval quality is measurable.
            let mut value = gaussian_vec(&mut rng, d, 0.0, 0.1);
            value[topic % d] += 1.0;
            key_rows.push(key);
            value_rows.push(value);
            token_topics.push(topic);
        }

        // Queries with drifting topical focus.
        let mut queries = Vec::with_capacity(config.decode_steps);
        let mut query_topics = Vec::with_capacity(config.decode_steps);
        let mut decode_keys = Vec::with_capacity(config.decode_steps);
        let mut decode_values = Vec::with_capacity(config.decode_steps);
        let mut focus = rng.gen_range(0..config.num_topics);
        for step in 0..config.decode_steps {
            if config.drift_period > 0 && step > 0 && step % config.drift_period == 0 {
                focus = rng.gen_range(0..config.num_topics);
            }
            let secondary = (focus + 1 + step % config.num_topics.max(1)) % config.num_topics;
            let noise = gaussian_vec(&mut rng, d, 0.0, config.noise);
            // The focus component is strong enough that the softmax
            // concentrates on the focus topic's tokens — the attention
            // sparsity the paper's compression relies on (§II-B).
            let q: Vec<f32> = topics[focus]
                .iter()
                .zip(topics[secondary].iter())
                .zip(&noise)
                .map(|((f, s), n)| f * 6.0 + s * 0.8 + n)
                .collect();
            queries.push(q);
            query_topics.push(focus);

            // The generated token's key belongs to the focus topic.
            let knoise = gaussian_vec(&mut rng, d, 0.0, config.noise);
            decode_keys.push(
                topics[focus]
                    .iter()
                    .zip(&knoise)
                    .map(|(t, n)| t * 2.0 + n)
                    .collect(),
            );
            let mut v = gaussian_vec(&mut rng, d, 0.0, 0.1);
            v[focus % d] += 1.0;
            decode_values.push(v);
        }

        Self {
            config,
            keys: Matrix::from_rows(key_rows).expect("uniform key rows"),
            values: Matrix::from_rows(value_rows).expect("uniform value rows"),
            queries,
            decode_keys,
            decode_values,
            token_topics,
            query_topics,
        }
    }

    /// Prefill context length.
    pub fn context_len(&self) -> usize {
        self.keys.rows()
    }

    /// Number of decoding steps.
    pub fn decode_steps(&self) -> usize {
        self.queries.len()
    }

    /// Prefill token positions belonging to the given topic.
    pub fn topic_tokens(&self, topic: usize) -> Vec<usize> {
        self.token_topics
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == topic)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_tensor::ops::attention_weights;
    use clusterkv_tensor::vector::top_k_indices;

    fn small_config() -> EpisodeConfig {
        EpisodeConfig {
            context_len: 256,
            decode_steps: 16,
            head_dim: 32,
            num_topics: 8,
            sink_tokens: 8,
            outlier_channels: 2,
            drift_period: 4,
            noise: 0.2,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Episode::generate(small_config());
        let b = Episode::generate(small_config());
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.query_topics, b.query_topics);
        let c = Episode::generate(small_config().with_seed(8));
        assert_ne!(a.keys, c.keys);
    }

    #[test]
    fn shapes_match_config() {
        let e = Episode::generate(small_config());
        assert_eq!(e.context_len(), 256);
        assert_eq!(e.decode_steps(), 16);
        assert_eq!(e.keys.shape(), (256, 32));
        assert_eq!(e.values.shape(), (256, 32));
        assert_eq!(e.decode_keys.len(), 16);
        assert_eq!(e.token_topics.len(), 256);
    }

    #[test]
    fn sinks_have_no_topic_and_every_topic_has_tokens() {
        let e = Episode::generate(small_config());
        for i in 0..8 {
            assert_eq!(e.token_topics[i], usize::MAX);
        }
        let covered: std::collections::HashSet<usize> = e
            .token_topics
            .iter()
            .copied()
            .filter(|&t| t != usize::MAX)
            .collect();
        assert!(covered.len() >= 6, "most topics should be populated");
        for &t in &covered {
            assert!(!e.topic_tokens(t).is_empty());
        }
    }

    #[test]
    fn queries_attend_mostly_to_their_focus_topic() {
        let e = Episode::generate(small_config());
        for step in 0..e.decode_steps() {
            let q = &e.queries[step];
            let weights = attention_weights(q, e.keys.iter_rows());
            let top = top_k_indices(&weights, 16);
            let focus = e.query_topics[step];
            let in_focus = top.iter().filter(|&&t| e.token_topics[t] == focus).count();
            assert!(
                in_focus * 2 >= top.len(),
                "step {step}: only {in_focus}/16 top tokens in focus topic"
            );
        }
    }

    #[test]
    fn importance_drifts_across_steps() {
        // The focus topic changes every drift_period steps, so the top-k sets
        // at steps in different focus phases must differ substantially.
        let e = Episode::generate(small_config());
        let weights_at = |s: usize| attention_weights(&e.queries[s], e.keys.iter_rows());
        let mut distinct_phases = std::collections::HashSet::new();
        for s in 0..e.decode_steps() {
            distinct_phases.insert(e.query_topics[s]);
        }
        assert!(
            distinct_phases.len() >= 2,
            "focus should change at least once"
        );
        // Find two steps with different focus and compare their top sets.
        let s0 = 0;
        let s1 = (0..e.decode_steps())
            .find(|&s| e.query_topics[s] != e.query_topics[s0])
            .expect("a step with a different focus exists");
        let top0: std::collections::HashSet<usize> =
            top_k_indices(&weights_at(s0), 32).into_iter().collect();
        let top1: std::collections::HashSet<usize> =
            top_k_indices(&weights_at(s1), 32).into_iter().collect();
        let overlap = top0.intersection(&top1).count();
        assert!(
            overlap < 24,
            "importance should drift (overlap {overlap}/32)"
        );
    }

    #[test]
    fn builder_setters_work() {
        let c = EpisodeConfig::default()
            .with_context_len(128)
            .with_decode_steps(4)
            .with_num_topics(3)
            .with_seed(1);
        assert_eq!(c.context_len, 128);
        assert_eq!(c.decode_steps, 4);
        assert_eq!(c.num_topics, 3);
        assert_eq!(c.seed, 1);
    }
}
