//! Synthetic workloads and accuracy proxies for the ClusterKV experiments.
//!
//! The paper evaluates on LongBench (eight datasets), PG19 language
//! modelling and NarrativeQA traces, with pretrained 8–9 B parameter models.
//! Neither the datasets nor the checkpoints are available in this
//! environment, so this crate provides synthetic substitutes that exercise
//! the same code paths and preserve the properties the experiments measure
//! (see DESIGN.md §2):
//!
//! * [`semantic`] — a generator of per-head attention episodes: keys with
//!   clustered (topical) structure, attention sinks, outlier channels and
//!   queries whose topical focus drifts across decoding steps (the dynamic
//!   importance of Fig. 3a).
//! * [`harness`] — runs any [`TokenSelector`](clusterkv_model::TokenSelector)
//!   over an episode and records recall rates, attention-output errors and
//!   selected sets; every accuracy-style figure is built on this harness. It
//!   also hosts [`generate_traffic`], the deterministic open-loop request
//!   trace generator the serving experiments feed into
//!   `clusterkv_sched::Scheduler`.
//! * [`longbench`] — the eight LongBench dataset profiles and the mapping
//!   from measured retrieval quality to an F1 / ROUGE-L-style score.
//! * [`language_modeling`] — the PG19 perplexity proxy: perplexity as a
//!   monotone function of attention-approximation error.
//! * [`quality`] — the quality-vs-memory lane of the compressed KV tier
//!   (DESIGN.md §9): the same decode loop attending over
//!   compressed-reconstructed cold pages, yielding accuracy-vs-memory
//!   frontier points for `exp_quality`.

#![warn(missing_docs)]

pub mod harness;
pub mod language_modeling;
pub mod longbench;
pub mod quality;
pub mod semantic;

pub use harness::{
    generate_traffic, run_budget_sweep, run_episode, run_episode_cached, EpisodeResult,
    ReuseDistanceHistogram, TrafficConfig,
};
pub use language_modeling::{perplexity_proxy, PerplexityPoint};
pub use longbench::{LongBenchDataset, LongBenchProfile, ScoreMetric};
pub use quality::{
    quality_perplexity, quality_score, run_episode_quality, QualityLane, QualityResult,
};
pub use semantic::{Episode, EpisodeConfig};
