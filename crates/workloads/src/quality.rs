//! Quality-vs-memory evaluation lane for the compressed KV tier
//! (DESIGN.md §9).
//!
//! [`run_episode_quality`] mirrors the plain [`harness`](crate::harness)
//! decode loop but attends over *compressed-reconstructed* KV wherever a
//! token lives in a cold page: pages are compressed with
//! [`compress_page`] exactly as the serving engine does on a compressed
//! recall, the reconstructed rows are substituted into the selected set, and
//! the attention-output error is measured against exact full attention. The
//! per-page byte accounting accumulates into an accuracy-vs-memory point —
//! one [`QualityResult`] per (method, compression config) — from which
//! `exp_quality` draws the frontier.
//!
//! Grouping follows the plan's residency: a recall-compressed plan
//! ([`KvResidency::Compressed`]) carries its cluster memberships, so
//! ClusterKV pages are compressed along semantic cluster boundaries (where
//! SLERP merging finds similar neighbours); recall-exact and resident plans
//! (Quest's positional pages, H2O's resident working set) fall back to
//! fixed-size positional blocks over the selected tokens — the grouping
//! those methods' own paging would use.
//!
//! Under a lossless config every reconstruction is the identity, so the
//! per-step recall/error/selection vectors are **bit-identical** to
//! [`run_episode`](crate::harness::run_episode)'s — the golden-parity
//! property the lossless boundary tests pin down.

use crate::harness::EpisodeResult;
use crate::language_modeling::{BASE_PERPLEXITY, ERROR_SENSITIVITY};
use crate::longbench::LongBenchProfile;
use crate::semantic::Episode;
use clusterkv_kvcache::compressed::{compress_page, CompressionConfig};
use clusterkv_kvcache::types::Budget;
use clusterkv_kvcache::KvStore;
use clusterkv_model::attention::attend_full;
use clusterkv_model::policy::{
    KvResidency, ObserveEvent, PolicyStats, SelectionRequest, TokenSelector,
};
use clusterkv_tensor::kernels::attend_into;
use clusterkv_tensor::vector::top_k_indices;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Weight of the attention-output error in [`quality_perplexity`]. Selection
/// misses (recall) and reconstruction error (quantization / merging) degrade
/// generation quality through the same attention outputs, but a bounded
/// relative output error perturbs logits less than dropping a top-`B` token
/// outright, so it enters at half the recall sensitivity.
pub const OUTPUT_ERROR_SENSITIVITY: f64 = 0.5;

/// One lane of the quality evaluation: a compression configuration plus the
/// positional block size used for selectors whose plans carry no cluster
/// membership.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityLane {
    /// Compression applied to cold pages.
    pub compression: CompressionConfig,
    /// Tokens per positional block for recall-exact / resident plans
    /// (Quest, H2O, oracle baselines). ClusterKV's recall-compressed plans
    /// group by cluster membership instead.
    pub block_tokens: usize,
}

impl QualityLane {
    /// A lane over the given compression config with the default 16-token
    /// positional blocks (Quest's page size in the paper's configuration).
    pub fn new(compression: CompressionConfig) -> Self {
        Self {
            compression,
            block_tokens: 16,
        }
    }

    /// Replace the positional block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    pub fn with_block_tokens(mut self, block_tokens: usize) -> Self {
        assert!(block_tokens > 0, "block_tokens must be positive");
        self.block_tokens = block_tokens;
        self
    }
}

/// One accuracy-vs-memory point: an episode run under a compression lane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityResult {
    /// The per-step measurements (recall/error computed over the
    /// compressed-reconstructed KV).
    pub result: EpisodeResult,
    /// Relative L2 distance between the exact-selected attention output and
    /// the compressed-reconstruction output at every step — the pure
    /// compression perturbation, independent of how good the *selection*
    /// was. Identically zero under a lossless lane.
    pub per_step_reconstruction_error: Vec<f64>,
    /// The lane's compression configuration.
    pub compression: CompressionConfig,
    /// Total f16 bytes the compressed pages would occupy exact, summed over
    /// every page of every step.
    pub exact_bytes: u64,
    /// Total bytes of the compressed layout for the same pages.
    pub compressed_bytes: u64,
    /// Total SLERP-merged pairs across all pages and steps.
    pub merged_pairs: u64,
}

impl QualityResult {
    /// Cold-KV compression ratio `exact / compressed`; `0.0` when the run
    /// compressed nothing (never `NaN`).
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.exact_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Mean reconstruction error across steps (`0.0` when empty, never
    /// `NaN`).
    pub fn mean_reconstruction_error(&self) -> f64 {
        if self.per_step_reconstruction_error.is_empty() {
            0.0
        } else {
            self.per_step_reconstruction_error.iter().sum::<f64>()
                / self.per_step_reconstruction_error.len() as f64
        }
    }

    /// Compression-aware perplexity proxy of this run
    /// ([`quality_perplexity`]).
    pub fn perplexity(&self) -> f64 {
        quality_perplexity(&self.result, self.mean_reconstruction_error())
    }

    /// Compression-aware LongBench-style score under `profile`
    /// ([`quality_score`]).
    pub fn score(&self, profile: &LongBenchProfile) -> f64 {
        quality_score(profile, &self.result, self.mean_reconstruction_error())
    }
}

/// Compression-aware perplexity proxy: like
/// [`perplexity_proxy`](crate::language_modeling::perplexity_proxy) it grows
/// exponentially with the miss rate of the truly important tokens, but it
/// additionally charges the mean *reconstruction* error — the perturbation
/// compression itself adds on top of whatever the selection missed. With
/// `reconstruction_error == 0` (any lossless lane) it reduces exactly to
/// `perplexity_proxy`, so frontier plots share the plain harness's anchor.
pub fn quality_perplexity(result: &EpisodeResult, reconstruction_error: f64) -> f64 {
    let miss = (1.0 - result.mean_recall()).clamp(0.0, 1.0);
    let recon = reconstruction_error.clamp(0.0, 1.0);
    BASE_PERPLEXITY * (ERROR_SENSITIVITY * miss + OUTPUT_ERROR_SENSITIVITY * recon).exp()
}

/// Compression-aware LongBench-style score: fidelity is the recall
/// attenuated by the mean reconstruction error, mapped through the dataset's
/// floor-to-full-KV score range (the same interpolation as
/// [`LongBenchProfile::score`], which uses recall alone — the two agree
/// whenever reconstruction is exact).
pub fn quality_score(
    profile: &LongBenchProfile,
    result: &EpisodeResult,
    reconstruction_error: f64,
) -> f64 {
    let recon = reconstruction_error.clamp(0.0, 1.0);
    let fidelity = (result.mean_recall() * (1.0 - recon)).clamp(0.0, 1.0);
    profile.floor_score + (profile.full_kv_score - profile.floor_score) * fidelity
}

/// Chunk the selected token positions into fixed-size positional blocks
/// (ascending) — the page grouping of selectors whose plans carry no
/// cluster membership.
fn positional_blocks(selected: &[usize], block_tokens: usize) -> Vec<Vec<usize>> {
    let mut sorted = selected.to_vec();
    sorted.sort_unstable();
    sorted
        .chunks(block_tokens.max(1))
        .map(|c| c.to_vec())
        .collect()
}

/// Relative L2 error between the exact full-attention output and the
/// compressed-reconstruction output. Same arithmetic as
/// [`attention_output_error`](clusterkv_model::attention::attention_output_error),
/// so lossless runs reproduce the plain harness's error values bit-for-bit.
fn relative_error(full: &[f32], approx: &[f32]) -> f32 {
    let diff: f32 = full
        .iter()
        .zip(approx)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    let denom: f32 = full.iter().map(|x| x * x).sum::<f32>().sqrt();
    if denom == 0.0 {
        diff
    } else {
        diff / denom
    }
}

/// Run `selector` over `episode` with the given budget, attending over
/// compressed-reconstructed KV and accounting the compressed footprint.
///
/// The decode loop matches the plain harness step for step: plan, measure
/// recall of the true top-`B` tokens, measure attention-output error — but
/// the error is computed after substituting every selected row that lives in
/// a cold page with its [`compress_page`] reconstruction (the engine's
/// compressed-recall path, [`ServeEngine`] §9). Recall-compressed plans
/// contribute their cluster memberships as pages; other plans use
/// `lane.block_tokens`-sized positional blocks over the selected tokens.
///
/// For ClusterKV to exercise the cluster-grouped path, build the selector
/// with the *same* compression config in its `ClusterKvConfig` — a
/// lossless-configured selector emits recall-exact plans and this lane falls
/// back to positional grouping, which still measures the quantization ladder
/// fairly.
///
/// [`ServeEngine`]: clusterkv_model::ServeEngine
pub fn run_episode_quality(
    episode: &Episode,
    selector: &mut dyn TokenSelector,
    budget: Budget,
    lane: QualityLane,
) -> QualityResult {
    let head_dim = episode.config.head_dim;
    let mut store = KvStore::new(head_dim);
    store.append_batch(&episode.keys, &episode.values);
    selector.observe(ObserveEvent::Prefill {
        keys: &episode.keys,
    });

    let mut per_step_recall = Vec::with_capacity(episode.decode_steps());
    let mut per_step_error = Vec::with_capacity(episode.decode_steps());
    let mut per_step_reconstruction_error = Vec::with_capacity(episode.decode_steps());
    let mut per_step_selected = Vec::with_capacity(episode.decode_steps());
    let mut stats = PolicyStats::default();
    let mut exact_bytes = 0u64;
    let mut compressed_bytes = 0u64;
    let mut merged_pairs = 0u64;

    for step in 0..episode.decode_steps() {
        let query = &episode.queries[step];
        let n = store.len();
        let plan = selector.plan(SelectionRequest::new(query, n, budget));
        stats.merge(&plan.stats);
        let groups: Vec<Vec<usize>> = match &plan.residency {
            KvResidency::Compressed(pages) => pages.iter().map(|p| p.members.clone()).collect(),
            _ => positional_blocks(&plan.indices, lane.block_tokens),
        };
        let selected = plan.indices;
        per_step_selected.push(selected.len());

        // Ground truth: the B tokens with the largest exact attention
        // weights (identical to the plain harness — compression never
        // changes selection).
        let full = attend_full(&store, query);
        let truth: BTreeSet<usize> = top_k_indices(&full.weights, budget.tokens().min(n))
            .into_iter()
            .collect();
        let selected_set: BTreeSet<usize> = selected.iter().copied().collect();
        let hit = truth.intersection(&selected_set).count();
        per_step_recall.push(if truth.is_empty() {
            1.0
        } else {
            hit as f64 / truth.len() as f64
        });

        // Reconstruct each cold page over its full membership (the
        // order-free engine invariant) and substitute the selected rows,
        // then attend and measure against exact full attention.
        let mut k_sel = store.keys().select_rows(&selected);
        let mut v_sel = store.values().select_rows(&selected);
        let mut weights = Vec::with_capacity(selected.len());
        let mut exact_out = vec![0.0f32; head_dim];
        attend_into(&k_sel, &v_sel, None, query, &mut weights, &mut exact_out);
        let row_of: BTreeMap<usize, usize> = selected
            .iter()
            .enumerate()
            .map(|(row, &pos)| (pos, row))
            .collect();
        for members in &groups {
            let page = compress_page(store.keys(), store.values(), members, lane.compression);
            exact_bytes += page.exact_bytes.get();
            compressed_bytes += page.compressed_bytes.get();
            merged_pairs += page.merged_pairs as u64;
            for (i, &pos) in members.iter().enumerate() {
                if let Some(&row) = row_of.get(&pos) {
                    k_sel.row_mut(row).copy_from_slice(page.keys.row(i));
                    v_sel.row_mut(row).copy_from_slice(page.values.row(i));
                }
            }
        }
        let mut out = vec![0.0f32; head_dim];
        attend_into(&k_sel, &v_sel, None, query, &mut weights, &mut out);
        per_step_error.push(relative_error(&full.output, &out) as f64);
        per_step_reconstruction_error.push(relative_error(&exact_out, &out) as f64);

        let position = store.len();
        store.append(&episode.decode_keys[step], &episode.decode_values[step]);
        selector.observe(ObserveEvent::Append {
            position,
            key: &episode.decode_keys[step],
        });
    }

    QualityResult {
        result: EpisodeResult {
            method: selector.name().to_string(),
            budget: budget.tokens(),
            per_step_recall,
            per_step_error,
            per_step_selected,
            stats,
            reuse: crate::harness::ReuseDistanceHistogram::default(),
        },
        per_step_reconstruction_error,
        compression: lane.compression,
        exact_bytes,
        compressed_bytes,
        merged_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_episode;
    use crate::longbench::LongBenchDataset;
    use crate::semantic::EpisodeConfig;
    use clusterkv::{ClusterKvConfig, ClusterKvFactory};
    use clusterkv_kvcache::compressed::QuantMode;
    use clusterkv_model::policy::{FullAttentionSelector, HeadContext, SelectorFactory};

    fn episode() -> Episode {
        Episode::generate(EpisodeConfig {
            context_len: 200,
            decode_steps: 12,
            head_dim: 32,
            num_topics: 6,
            sink_tokens: 8,
            outlier_channels: 1,
            drift_period: 4,
            noise: 0.2,
            seed: 3,
        })
    }

    fn ctx() -> HeadContext {
        HeadContext {
            layer: 2,
            head: 0,
            head_dim: 32,
        }
    }

    fn clusterkv_factory(compression: CompressionConfig) -> ClusterKvFactory {
        ClusterKvFactory::new(
            ClusterKvConfig::default()
                .with_sink_tokens(8)
                .with_tokens_per_cluster(16)
                .with_compression(compression),
        )
    }

    #[test]
    fn lossless_lane_is_bit_identical_to_the_plain_harness() {
        let e = episode();
        let factory = clusterkv_factory(CompressionConfig::lossless());
        let mut plain = factory.create(ctx());
        let baseline = run_episode(&e, plain.as_mut(), Budget::new(32));
        let mut sel = factory.create(ctx());
        let lane = QualityLane::new(CompressionConfig::lossless());
        let q = run_episode_quality(&e, sel.as_mut(), Budget::new(32), lane);
        assert_eq!(q.result.per_step_recall, baseline.per_step_recall);
        assert_eq!(q.result.per_step_error, baseline.per_step_error);
        assert_eq!(q.result.per_step_selected, baseline.per_step_selected);
        assert_eq!(q.compressed_bytes, q.exact_bytes, "lossless is byte-equal");
        assert_eq!(q.merged_pairs, 0);
        assert_eq!(q.compression_ratio(), 1.0);
        assert!(q.per_step_reconstruction_error.iter().all(|&e| e == 0.0));
        let anchored = crate::language_modeling::perplexity_proxy(&q.result);
        assert_eq!(q.perplexity(), anchored, "lossless reduces to the proxy");
    }

    #[test]
    fn lossless_lane_matches_for_resident_selectors_too() {
        let e = episode();
        let mut plain = FullAttentionSelector;
        let baseline = run_episode(&e, &mut plain, Budget::new(32));
        let mut sel = FullAttentionSelector;
        let lane = QualityLane::new(CompressionConfig::lossless());
        let q = run_episode_quality(&e, &mut sel, Budget::new(32), lane);
        assert_eq!(q.result.per_step_error, baseline.per_step_error);
        assert_eq!(q.result.per_step_recall, baseline.per_step_recall);
        assert!((q.result.mean_error()) < 1e-5, "full attention stays exact");
    }

    #[test]
    fn quantization_shrinks_bytes_without_changing_selection() {
        let e = episode();
        let lossless = {
            let factory = clusterkv_factory(CompressionConfig::lossless());
            let mut sel = factory.create(ctx());
            run_episode_quality(
                &e,
                sel.as_mut(),
                Budget::new(32),
                QualityLane::new(CompressionConfig::lossless()),
            )
        };
        let int8 = {
            let factory = clusterkv_factory(CompressionConfig::int8());
            let mut sel = factory.create(ctx());
            run_episode_quality(
                &e,
                sel.as_mut(),
                Budget::new(32),
                QualityLane::new(CompressionConfig::int8()),
            )
        };
        let int4 = {
            let factory = clusterkv_factory(CompressionConfig::int4());
            let mut sel = factory.create(ctx());
            run_episode_quality(
                &e,
                sel.as_mut(),
                Budget::new(32),
                QualityLane::new(CompressionConfig::int4()),
            )
        };
        // Selection is independent of the compression lane.
        assert_eq!(int8.result.per_step_recall, lossless.result.per_step_recall);
        assert_eq!(
            int8.result.per_step_selected,
            lossless.result.per_step_selected
        );
        // The byte ladder is strictly monotone; error stays bounded.
        assert!(int8.compressed_bytes < lossless.compressed_bytes);
        assert!(int4.compressed_bytes < int8.compressed_bytes);
        assert!(
            int8.compression_ratio() > 1.8,
            "{}",
            int8.compression_ratio()
        );
        assert!(
            int4.compression_ratio() > 3.5,
            "{}",
            int4.compression_ratio()
        );
        assert!(
            (int8.result.mean_error() - lossless.result.mean_error()).abs() < 0.05,
            "int8 error {} vs lossless {}",
            int8.result.mean_error(),
            lossless.result.mean_error()
        );
        // Reconstruction error isolates the quantization perturbation:
        // zero lossless, growing with grid coarseness — which makes the
        // perplexity ladder monotone even when the (selection-dominated)
        // full-attention error wobbles.
        assert_eq!(lossless.mean_reconstruction_error(), 0.0);
        assert!(int8.mean_reconstruction_error() > 0.0);
        assert!(int4.mean_reconstruction_error() > int8.mean_reconstruction_error());
        assert!(int8.perplexity() > lossless.perplexity());
        assert!(int4.perplexity() > int8.perplexity());
    }

    #[test]
    fn lossy_clusterkv_plans_group_pages_by_cluster() {
        let e = episode();
        let cfg = CompressionConfig::int8().with_merge_threshold(0.2);
        let factory = clusterkv_factory(cfg);
        let mut sel = factory.create(ctx());
        let q = run_episode_quality(&e, sel.as_mut(), Budget::new(32), QualityLane::new(cfg));
        // Cluster-grouped pages cover full memberships, so the exact bytes
        // exceed what the selected tokens alone would occupy, and merging
        // finds similar intra-cluster neighbours.
        assert!(q.compression_ratio() > 2.0, "{}", q.compression_ratio());
        assert!(q.merged_pairs > 0, "semantic clusters must yield merges");
        assert!(q.result.mean_recall() > 0.5);
    }

    #[test]
    fn quality_perplexity_is_monotone_and_anchored() {
        let mk = |recall: f64, error: f64| EpisodeResult {
            method: "x".into(),
            budget: 8,
            per_step_recall: vec![recall; 4],
            per_step_error: vec![error; 4],
            per_step_selected: vec![8; 4],
            stats: PolicyStats::default(),
            reuse: Default::default(),
        };
        let exact = quality_perplexity(&mk(1.0, 0.0), 0.0);
        assert!((exact - BASE_PERPLEXITY).abs() < 1e-12);
        assert!(quality_perplexity(&mk(0.9, 0.0), 0.0) > exact);
        assert!(quality_perplexity(&mk(1.0, 0.0), 0.1) > exact);
        assert!(quality_perplexity(&mk(0.9, 0.0), 0.1) > quality_perplexity(&mk(0.9, 0.0), 0.0));
        // The reconstruction channel is gentler than the recall channel.
        assert!(quality_perplexity(&mk(0.8, 0.0), 0.0) > quality_perplexity(&mk(1.0, 0.0), 0.2));
    }

    #[test]
    fn quality_score_attenuates_fidelity_by_error() {
        let p = LongBenchDataset::TwoWikiMqa.profile();
        let mk = |recall: f64, error: f64| EpisodeResult {
            method: "x".into(),
            budget: 8,
            per_step_recall: vec![recall; 4],
            per_step_error: vec![error; 4],
            per_step_selected: vec![8; 4],
            stats: PolicyStats::default(),
            reuse: Default::default(),
        };
        assert!((quality_score(&p, &mk(1.0, 0.0), 0.0) - p.full_kv_score).abs() < 1e-9);
        assert!((quality_score(&p, &mk(0.0, 1.0), 1.0) - p.floor_score).abs() < 1e-9);
        assert!(quality_score(&p, &mk(1.0, 0.0), 0.2) < p.full_kv_score);
        assert!(quality_score(&p, &mk(1.0, 0.0), 0.2) > quality_score(&p, &mk(0.5, 0.0), 0.2));
        // Recall-only scoring agrees whenever reconstruction is exact.
        let r = mk(0.7, 0.1);
        assert!((quality_score(&p, &r, 0.0) - p.score(&r)).abs() < 1e-12);
    }

    #[test]
    fn positional_blocks_partition_the_selection() {
        let blocks = positional_blocks(&[9, 1, 5, 3, 7, 0, 2], 3);
        assert_eq!(blocks, vec![vec![0, 1, 2], vec![3, 5, 7], vec![9]]);
        let flat: Vec<usize> = blocks.into_iter().flatten().collect();
        assert_eq!(flat.len(), 7);
    }

    #[test]
    fn empty_run_reports_zero_ratio_not_nan() {
        let q = QualityResult {
            result: EpisodeResult {
                method: "x".into(),
                budget: 8,
                per_step_recall: vec![],
                per_step_error: vec![],
                per_step_selected: vec![],
                stats: PolicyStats::default(),
                reuse: Default::default(),
            },
            per_step_reconstruction_error: vec![],
            compression: CompressionConfig::int4().with_quant(QuantMode::Int4),
            exact_bytes: 0,
            compressed_bytes: 0,
            merged_pairs: 0,
        };
        assert_eq!(q.compression_ratio(), 0.0);
        assert!(!q.compression_ratio().is_nan());
    }
}
