//! PG19-style language-modelling perplexity proxy (Fig. 10).
//!
//! The paper measures perplexity on PG19 with input lengths from 1 to 32 000
//! tokens and a 1024-token budget: Full KV sits around 10–11, ClusterKV
//! tracks it within ~0.5, InfiniGen deviates by ~2 and Quest by ~4. Without
//! the dataset or model, perplexity is modelled as a monotone function of how
//! much of the truly important attention mass the method fails to recall on a
//! synthetic episode of the same length: `ppl = base · exp(k · (1 − recall))`.
//! Full attention (recall 1) reproduces the base perplexity; methods that
//! miss more of the important tokens are pushed exponentially higher, which
//! preserves the ordering and the deviation structure of Fig. 10.

use crate::harness::EpisodeResult;
use serde::{Deserialize, Serialize};

/// Base perplexity of the (synthetic) language model with full attention,
/// chosen to match the level of Fig. 10.
pub const BASE_PERPLEXITY: f64 = 10.2;

/// Sensitivity of the proxy to missed important tokens.
pub const ERROR_SENSITIVITY: f64 = 1.0;

/// One point of the perplexity-vs-input-length curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerplexityPoint {
    /// Input (context) length in tokens.
    pub input_len: usize,
    /// Proxy perplexity.
    pub perplexity: f64,
}

/// Convert a measured episode result into a proxy perplexity.
///
/// # Examples
///
/// ```
/// use clusterkv_workloads::harness::EpisodeResult;
/// use clusterkv_workloads::language_modeling::{perplexity_proxy, BASE_PERPLEXITY};
///
/// let perfect = EpisodeResult {
///     method: "Full KV".into(),
///     budget: 1024,
///     per_step_recall: vec![1.0],
///     per_step_error: vec![0.0],
///     per_step_selected: vec![1024],
///     stats: Default::default(),
///     reuse: Default::default(),
/// };
/// assert!((perplexity_proxy(&perfect) - BASE_PERPLEXITY).abs() < 1e-9);
/// ```
pub fn perplexity_proxy(result: &EpisodeResult) -> f64 {
    let missed = (1.0 - result.mean_recall()).clamp(0.0, 1.0);
    BASE_PERPLEXITY * (ERROR_SENSITIVITY * missed).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(recall: f64) -> EpisodeResult {
        EpisodeResult {
            method: "m".into(),
            budget: 1024,
            per_step_recall: vec![recall; 3],
            per_step_error: vec![0.1; 3],
            per_step_selected: vec![1024; 3],
            stats: clusterkv_model::policy::PolicyStats::default(),
            reuse: Default::default(),
        }
    }

    #[test]
    fn perfect_recall_gives_base_perplexity() {
        assert!((perplexity_proxy(&result(1.0)) - BASE_PERPLEXITY).abs() < 1e-9);
    }

    #[test]
    fn perplexity_is_monotone_in_missed_recall() {
        assert!(perplexity_proxy(&result(0.9)) < perplexity_proxy(&result(0.7)));
        assert!(perplexity_proxy(&result(0.7)) < perplexity_proxy(&result(0.4)));
    }

    #[test]
    fn near_perfect_recall_stays_close_to_full_kv() {
        // A deviation like ClusterKV's (≤ 0.5 perplexity in the paper)
        // corresponds to recalling nearly all important tokens.
        let ppl = perplexity_proxy(&result(0.96));
        assert!(ppl - BASE_PERPLEXITY < 0.6, "ppl {ppl}");
    }

    #[test]
    fn missed_recall_is_clamped() {
        assert!(
            perplexity_proxy(&result(-3.0)) <= BASE_PERPLEXITY * ERROR_SENSITIVITY.exp() + 1e-9
        );
    }

    #[test]
    fn point_carries_its_fields() {
        let p = PerplexityPoint {
            input_len: 1000,
            perplexity: 10.5,
        };
        assert_eq!(p.input_len, 1000);
        assert!((p.perplexity - 10.5).abs() < 1e-12);
        assert_eq!(p, p.clone());
    }
}
