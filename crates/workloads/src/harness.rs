//! Runs a selection policy over an [`Episode`] and records the quantities
//! the accuracy-style experiments need: recall of important tokens, attention
//! output error, selection sizes and the policy's accumulated cost
//! statistics (merged from the per-call [`SelectionPlan`]s) — plus the
//! deterministic open-loop [traffic generator](generate_traffic) the serving
//! experiments feed into `clusterkv_sched::Scheduler`.
//!
//! [`SelectionPlan`]: clusterkv_model::policy::SelectionPlan

use crate::semantic::Episode;
use clusterkv_kvcache::cluster_cache::ClusterCache;
use clusterkv_kvcache::types::{Budget, Bytes, HeadId, LayerId};
use clusterkv_kvcache::KvStore;
use clusterkv_model::attention::{attention_output_error, full_attention_weights};
use clusterkv_model::policy::{
    HeadContext, ObserveEvent, PolicyStats, SelectionRequest, SelectorFactory, TokenSelector,
};
use clusterkv_tensor::vector::top_k_indices;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// LRU stack-distance histogram of a policy's cluster (page) accesses.
///
/// The reuse distance of an access is the number of *distinct* pages the
/// policy requested since its previous request for the same page — the
/// classic stack distance, measured in pages. It characterizes the
/// workload, not any particular cache: an LRU cache holding `D` pages hits
/// exactly the accesses with distance < `D`, so the cumulative histogram
/// *is* the hit-rate-vs-capacity curve and predicts what the capacity
/// sweep then measures.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReuseDistanceHistogram {
    /// `buckets[i]` counts accesses with stack distance in
    /// `[2^i - 1, 2^(i+1) - 1)` — i.e. bucket 0 is distance 0 (the page
    /// re-requested with nothing in between), bucket 1 is distances 1–2,
    /// bucket 2 is 3–6, and so on.
    pub buckets: Vec<u64>,
    /// First-touch accesses (no prior request for the page; infinite
    /// distance).
    pub cold: u64,
}

impl ReuseDistanceHistogram {
    /// Record one access; `None` marks a first touch.
    pub fn record(&mut self, distance: Option<usize>) {
        match distance {
            None => self.cold += 1,
            Some(d) => {
                let bucket = (usize::BITS - (d + 1).leading_zeros() - 1) as usize;
                if self.buckets.len() <= bucket {
                    self.buckets.resize(bucket + 1, 0);
                }
                self.buckets[bucket] += 1;
            }
        }
    }

    /// Total recorded accesses, first touches included.
    pub fn total(&self) -> u64 {
        self.cold + self.buckets.iter().sum::<u64>()
    }

    /// Fraction of all accesses with stack distance < `pages` — the hit
    /// rate an LRU cache holding `pages` whole pages would achieve on this
    /// trace. Conservative across bucket boundaries (a partially covered
    /// bucket does not count), and 0.0 for an empty histogram.
    pub fn hit_fraction_within(&self, pages: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        // Bucket i covers distances [2^i - 1, 2^(i+1) - 1): fully below
        // `pages` iff its upper end fits.
        let covered: u64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| (1u128 << (i + 1)) - 1 <= pages as u128)
            .map(|(_, n)| n)
            .sum();
        covered as f64 / total as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &ReuseDistanceHistogram) {
        self.cold += other.cold;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// Per-episode measurements of one policy at one budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpisodeResult {
    /// Policy name.
    pub method: String,
    /// Budget used.
    pub budget: usize,
    /// Recall of the true top-`B` tokens at every decoding step.
    pub per_step_recall: Vec<f64>,
    /// Relative attention-output error at every decoding step.
    pub per_step_error: Vec<f64>,
    /// Number of tokens selected at every step.
    pub per_step_selected: Vec<usize>,
    /// Policy statistics accumulated over every selection plan of the run
    /// (selection work, transfers, cache hits).
    pub stats: PolicyStats,
    /// Stack-distance histogram of the plans' page requests (empty for
    /// unpaged policies).
    pub reuse: ReuseDistanceHistogram,
}

impl EpisodeResult {
    /// Mean recall across steps (the Fig. 11 metric).
    pub fn mean_recall(&self) -> f64 {
        mean(&self.per_step_recall)
    }

    /// Mean relative attention-output error across steps.
    pub fn mean_error(&self) -> f64 {
        mean(&self.per_step_error)
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Run `selector` over `episode` with the given budget, without a GPU
/// cluster cache: every page a plan requests is charged as a PCIe recall
/// (the "no cache" / pure-offload configuration of §V-C).
pub fn run_episode(
    episode: &Episode,
    selector: &mut dyn TokenSelector,
    budget: Budget,
) -> EpisodeResult {
    let mut cache = ClusterCache::new(clusterkv_kvcache::cluster_cache::ClusterCacheConfig::new(
        Bytes(0),
        episode.config.head_dim,
    ));
    run_episode_cached(episode, selector, budget, &mut cache)
}

/// Run `selector` over `episode` with the given budget, resolving each
/// plan's page requests against `cache` — the single-head analogue of the
/// serving engine's per-session residency tracking.
///
/// The harness mirrors the engine's decode loop for a single head: the
/// selector observes the prefill keys (after which never-offloaded pages are
/// warm-admitted into the cache while capacity allows), then at every step
/// plans the token set for the query, the plan's pages are looked up in the
/// cache (misses become transfers), the exact top-`B` set and attention
/// error are measured against full attention, and the step's generated
/// key/value are appended to both the store and the selector (so incremental
/// clustering and recallability across appended tokens are exercised). The
/// per-call plan statistics and residency outcomes are merged into
/// [`EpisodeResult::stats`].
pub fn run_episode_cached(
    episode: &Episode,
    selector: &mut dyn TokenSelector,
    budget: Budget,
    cache: &mut ClusterCache,
) -> EpisodeResult {
    const HARNESS_HEAD: (LayerId, HeadId) = (LayerId(0), HeadId(0));
    let head_dim = episode.config.head_dim;
    let mut store = KvStore::new(head_dim);
    store.append_batch(&episode.keys, &episode.values);
    selector.observe(ObserveEvent::Prefill {
        keys: &episode.keys,
    });
    // Paged and recall-compressed tables warm identically: admission is
    // always exact; demotion to the compressed tier happens under eviction
    // pressure (DESIGN.md §9).
    let warm = |selector: &dyn TokenSelector, cache: &mut ClusterCache| {
        if cache.enabled() && !cache.is_offloaded(HARNESS_HEAD.0, HARNESS_HEAD.1) {
            if let Some(pages) = selector.page_table().page_requests() {
                cache.warm(HARNESS_HEAD.0, HARNESS_HEAD.1, &pages);
            }
        }
    };
    warm(selector, cache);

    let mut per_step_recall = Vec::with_capacity(episode.decode_steps());
    let mut per_step_error = Vec::with_capacity(episode.decode_steps());
    let mut per_step_selected = Vec::with_capacity(episode.decode_steps());
    let mut stats = PolicyStats::default();
    let mut reuse = ReuseDistanceHistogram::default();
    // LRU stack for the reuse-distance measurement: most recently requested
    // page last; an access's stack distance is how deep it sits from the top.
    let mut lru_stack: Vec<usize> = Vec::new();

    for step in 0..episode.decode_steps() {
        let query = &episode.queries[step];
        let n = store.len();
        let plan = selector.plan(SelectionRequest::new(query, n, budget));
        stats.merge(&plan.stats);
        if let Some(pages) = plan.residency.page_requests() {
            for request in &pages {
                match lru_stack.iter().rposition(|&p| p == request.page) {
                    Some(pos) => {
                        reuse.record(Some(lru_stack.len() - 1 - pos));
                        lru_stack.remove(pos);
                    }
                    None => reuse.record(None),
                }
                lru_stack.push(request.page);
            }
            let outcome = cache.access(HARNESS_HEAD.0, HARNESS_HEAD.1, &pages);
            stats.charge_recall(&outcome);
        }
        let selected = plan.indices;
        per_step_selected.push(selected.len());

        // Ground truth: the B tokens with the largest exact attention weights.
        let full = full_attention_weights(&store, query);
        let truth: BTreeSet<usize> = top_k_indices(&full, budget.tokens().min(n))
            .into_iter()
            .collect();
        let selected_set: BTreeSet<usize> = selected.iter().copied().collect();
        let hit = truth.intersection(&selected_set).count();
        per_step_recall.push(if truth.is_empty() {
            1.0
        } else {
            hit as f64 / truth.len() as f64
        });
        per_step_error.push(attention_output_error(&store, query, &selected) as f64);

        // Append the generated token and let the policy observe it; KV of
        // freshly clustered pages stays resident while capacity allows.
        let position = store.len();
        store.append(&episode.decode_keys[step], &episode.decode_values[step]);
        selector.observe(ObserveEvent::Append {
            position,
            key: &episode.decode_keys[step],
        });
        warm(selector, cache);
    }

    EpisodeResult {
        method: selector.name().to_string(),
        budget: budget.tokens(),
        per_step_recall,
        per_step_error,
        per_step_selected,
        stats,
        reuse,
    }
}

/// Configuration of the open-loop traffic generator.
///
/// Arrivals follow a seeded Poisson process (exponential interarrival gaps
/// at `arrival_rate` requests per modeled second); prompt and output lengths
/// are drawn uniformly from inclusive ranges; priorities cycle through
/// `priority_levels` classes deterministically. Everything is derived from
/// `seed`, so the same configuration always produces byte-identical traces —
/// the property the serving experiments and CI smoke rely on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Number of requests in the trace.
    pub num_requests: usize,
    /// Mean arrival rate in requests per modeled second.
    pub arrival_rate: f64,
    /// Inclusive `(min, max)` prompt length in tokens.
    pub prompt_len: (usize, usize),
    /// Inclusive `(min, max)` generation length in tokens.
    pub output_len: (usize, usize),
    /// Vocabulary size prompt tokens are drawn from.
    pub vocab_size: usize,
    /// Number of priority classes (`0..priority_levels`); 1 ⇒ uniform.
    pub priority_levels: u32,
    /// Number of shared prompt templates (0 ⇒ every prompt is unique, the
    /// historical behavior). With `N > 0` each request prepends one of `N`
    /// fixed token templates — the "N system prompts × M users" traffic
    /// shape whose cross-session redundancy the engine's prefix store
    /// exploits.
    pub prefix_templates: usize,
    /// Inclusive `(min, max)` template length in tokens (ignored when
    /// `prefix_templates` is 0). Templates longer than a request's drawn
    /// prompt length are truncated to it, so the shared fraction of a trace
    /// is roughly `template_len / prompt_len`.
    pub template_len: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl TrafficConfig {
    /// A small mixed-length trace against the given vocabulary.
    pub fn new(num_requests: usize, arrival_rate: f64, vocab_size: usize) -> Self {
        Self {
            num_requests,
            arrival_rate,
            prompt_len: (16, 96),
            output_len: (4, 24),
            vocab_size,
            priority_levels: 1,
            prefix_templates: 0,
            template_len: (0, 0),
            seed: 0,
        }
    }

    /// Replace the prompt-length range.
    pub fn with_prompt_len(mut self, min: usize, max: usize) -> Self {
        self.prompt_len = (min, max);
        self
    }

    /// Replace the output-length range.
    pub fn with_output_len(mut self, min: usize, max: usize) -> Self {
        self.output_len = (min, max);
        self
    }

    /// Replace the number of priority classes.
    pub fn with_priority_levels(mut self, levels: u32) -> Self {
        self.priority_levels = levels;
        self
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Share prompt prefixes: each request prepends one of `templates`
    /// fixed token sequences whose lengths are drawn from the inclusive
    /// `(min_len, max_len)` range. Pass `templates = 0` to disable (the
    /// default — existing traces stay byte-identical).
    pub fn with_prefix_templates(
        mut self,
        templates: usize,
        min_len: usize,
        max_len: usize,
    ) -> Self {
        self.prefix_templates = templates;
        self.template_len = (min_len, max_len);
        self
    }
}

/// Generate a deterministic open-loop request trace (sorted by arrival).
///
/// # Panics
///
/// Panics if `arrival_rate` is not positive, a range is inverted, or
/// `priority_levels` is zero.
pub fn generate_traffic(config: &TrafficConfig) -> Vec<clusterkv_sched::Request> {
    assert!(config.arrival_rate > 0.0, "arrival_rate must be positive");
    assert!(
        config.prompt_len.0 >= 1 && config.prompt_len.0 <= config.prompt_len.1,
        "prompt_len range must be non-empty"
    );
    assert!(
        config.output_len.0 >= 1 && config.output_len.0 <= config.output_len.1,
        "output_len range must be non-empty"
    );
    assert!(
        config.priority_levels > 0,
        "need at least one priority class"
    );
    if config.prefix_templates > 0 {
        assert!(
            config.template_len.0 >= 1 && config.template_len.0 <= config.template_len.1,
            "template_len range must be non-empty"
        );
    }
    use rand::Rng;
    // Templates come from their own derived seed stream so enabling them
    // perturbs nothing about the base trace's rng draws (arrivals, lengths),
    // and `prefix_templates = 0` reproduces historical traces byte-for-byte.
    let templates: Vec<Vec<usize>> = {
        let mut trng =
            clusterkv_tensor::rng::seeded(clusterkv_tensor::rng::derive_seed(config.seed, 0x7e4a));
        (0..config.prefix_templates)
            .map(|_| {
                let len = trng.gen_range(config.template_len.0..config.template_len.1 + 1);
                (0..len)
                    .map(|_| trng.gen_range(0..config.vocab_size))
                    .collect()
            })
            .collect()
    };
    let content_seed = clusterkv_tensor::rng::derive_seed(config.seed, 0x7e4b);
    let mut rng = clusterkv_tensor::rng::seeded(config.seed);
    let mut clock = 0.0f64;
    (0..config.num_requests)
        .map(|i| {
            // Exponential interarrival gap via inverse transform (53-bit
            // uniform in [0, 1); `1 - u` keeps the ln argument positive).
            let u = (rng.gen::<u64>() >> 11) as f64 / (1u64 << 53) as f64;
            clock += -(1.0 - u).ln() / config.arrival_rate;
            let prompt_len = rng.gen_range(config.prompt_len.0..config.prompt_len.1 + 1);
            let output_len = rng.gen_range(config.output_len.0..config.output_len.1 + 1);
            let prompt: Vec<usize> = if templates.is_empty() {
                (0..prompt_len)
                    .map(|_| rng.gen_range(0..config.vocab_size))
                    .collect()
            } else {
                // Template head (truncated to the drawn prompt length),
                // unique tail — the per-user suffix after a shared system
                // prompt. Content comes from a per-request derived stream
                // so the main stream draws identically however many tokens
                // each template covers: traces that differ only in their
                // template parameters share arrivals and lengths exactly,
                // which lets the prefix experiments sweep the shared
                // fraction against a fixed arrival process.
                let mut crng = clusterkv_tensor::rng::seeded(clusterkv_tensor::rng::derive_seed(
                    content_seed,
                    i as u64,
                ));
                let template = &templates[crng.gen_range(0..templates.len())];
                let head = template.len().min(prompt_len);
                template[..head]
                    .iter()
                    .copied()
                    .chain((head..prompt_len).map(|_| crng.gen_range(0..config.vocab_size)))
                    .collect()
            };
            clusterkv_sched::Request {
                prompt,
                max_new_tokens: output_len,
                priority: i as u32 % config.priority_levels,
                arrival_time: clusterkv_kvcache::device::Seconds(clock),
                deadline: None,
            }
        })
        .collect()
}

/// Run one policy over the same episode at several budgets — one fresh
/// selector per budget, budgets fanned out across the thread pool (each
/// budget's run is an independent single-head simulation, so this is
/// embarrassingly parallel). Results come back in budget order and are
/// identical to calling [`run_episode`] per budget sequentially, at any
/// `RAYON_NUM_THREADS`; the experiment binaries (`fig09`, `fig11`) use this
/// to sweep budgets on multicore hosts.
pub fn run_budget_sweep(
    episode: &Episode,
    factory: &dyn SelectorFactory,
    ctx: HeadContext,
    budgets: &[usize],
) -> Vec<EpisodeResult> {
    budgets
        .par_iter()
        .with_min_len(1)
        .map(|&budget| {
            let mut selector = factory.create(ctx);
            run_episode(episode, selector.as_mut(), Budget::new(budget))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::EpisodeConfig;
    use clusterkv::{ClusterKvConfig, ClusterKvFactory};
    use clusterkv_model::policy::{FullAttentionSelector, OracleTopKSelector};

    fn episode() -> Episode {
        Episode::generate(EpisodeConfig {
            context_len: 200,
            decode_steps: 12,
            head_dim: 32,
            num_topics: 6,
            sink_tokens: 8,
            outlier_channels: 1,
            drift_period: 4,
            noise: 0.2,
            seed: 3,
        })
    }

    #[test]
    fn full_attention_has_perfect_recall_and_zero_error() {
        let e = episode();
        let mut sel = FullAttentionSelector;
        let r = run_episode(&e, &mut sel, Budget::new(32));
        assert_eq!(r.per_step_recall.len(), 12);
        assert!((r.mean_recall() - 1.0).abs() < 1e-9);
        assert!(r.mean_error() < 1e-5);
        assert_eq!(r.method, "FullKV");
        assert_eq!(r.budget, 32);
    }

    #[test]
    fn oracle_topk_has_perfect_recall_under_budget() {
        let e = episode();
        let mut sel = OracleTopKSelector::new(32);
        let r = run_episode(&e, &mut sel, Budget::new(32));
        assert!((r.mean_recall() - 1.0).abs() < 1e-9);
        // Selecting the exact top-32 of ~200 tokens keeps the error moderate
        // (attention mass is concentrated on the focus topic's tokens).
        assert!(r.mean_error() < 0.7, "error {}", r.mean_error());
        assert!(r.per_step_selected.iter().all(|&s| s == 32));
    }

    #[test]
    fn recall_is_between_zero_and_one() {
        let e = episode();
        let mut sel = OracleTopKSelector::new(32);
        let r = run_episode(&e, &mut sel, Budget::new(16));
        for &rec in &r.per_step_recall {
            assert!((0.0..=1.0).contains(&rec));
        }
        for &err in &r.per_step_error {
            assert!(err >= 0.0);
        }
    }

    #[test]
    fn cached_and_uncached_runs_select_identically() {
        use clusterkv::{ClusterKvConfig, ClusterKvFactory};
        use clusterkv_model::policy::SelectorFactory;
        let e = episode();
        let factory = ClusterKvFactory::new(
            ClusterKvConfig::default()
                .with_sink_tokens(8)
                .with_tokens_per_cluster(16),
        );
        let ctx = clusterkv_model::policy::HeadContext {
            layer: 2,
            head: 0,
            head_dim: 32,
        };
        let mut plain = factory.create(ctx);
        let uncached = run_episode(&e, plain.as_mut(), Budget::new(32));
        let mut cached_sel = factory.create(ctx);
        let mut cache = ClusterCache::new(
            clusterkv_kvcache::cluster_cache::ClusterCacheConfig::for_recency_window(4, 32, 32),
        );
        let cached = run_episode_cached(&e, cached_sel.as_mut(), Budget::new(32), &mut cache);
        // Residency changes accounting only, never selection or accuracy.
        assert_eq!(cached.per_step_selected, uncached.per_step_selected);
        assert_eq!(cached.per_step_recall, uncached.per_step_recall);
        assert_eq!(cached.stats.scored_vectors, uncached.stats.scored_vectors);
        // The uncached run recalls every selected page at every step; the
        // cached run hits and moves strictly fewer tokens.
        assert_eq!(uncached.stats.cache.hits, 0);
        assert!(cached.stats.cache.hits > 0);
        assert!(
            cached.stats.transfer.tokens_moved < uncached.stats.transfer.tokens_moved,
            "cache must reduce recall traffic"
        );
    }

    #[test]
    fn resident_policies_never_touch_the_cache() {
        let e = episode();
        let mut sel = FullAttentionSelector;
        let mut cache = ClusterCache::new(
            clusterkv_kvcache::cluster_cache::ClusterCacheConfig::new(Bytes(1 << 20), 32),
        );
        let r = run_episode_cached(&e, &mut sel, Budget::new(32), &mut cache);
        assert_eq!(r.stats.cache.total(), 0);
        assert_eq!(r.stats.transfer.transfers, 0);
        assert_eq!(cache.resident_pages(), 0);
    }

    #[test]
    fn budget_sweep_matches_sequential_runs() {
        use clusterkv::{ClusterKvConfig, ClusterKvFactory};
        use clusterkv_model::policy::SelectorFactory;
        let e = episode();
        let factory = ClusterKvFactory::new(
            ClusterKvConfig::default()
                .with_sink_tokens(8)
                .with_tokens_per_cluster(16),
        );
        let ctx = HeadContext {
            layer: 2,
            head: 0,
            head_dim: 32,
        };
        let budgets = [16usize, 32, 64];
        let swept = run_budget_sweep(&e, &factory, ctx, &budgets);
        assert_eq!(swept.len(), budgets.len());
        for (result, &budget) in swept.iter().zip(&budgets) {
            let mut selector = factory.create(ctx);
            let sequential = run_episode(&e, selector.as_mut(), Budget::new(budget));
            assert_eq!(result.budget, budget);
            assert_eq!(result.per_step_recall, sequential.per_step_recall);
            assert_eq!(result.per_step_selected, sequential.per_step_selected);
            assert_eq!(result.stats, sequential.stats);
        }
    }

    #[test]
    fn traffic_is_deterministic_and_in_bounds() {
        let cfg = TrafficConfig::new(40, 100.0, 128)
            .with_prompt_len(8, 24)
            .with_output_len(2, 6)
            .with_priority_levels(3)
            .with_seed(42);
        let a = generate_traffic(&cfg);
        let b = generate_traffic(&cfg);
        assert_eq!(a, b, "same seed must reproduce the trace exactly");
        assert_eq!(a.len(), 40);
        let mut last_arrival = 0.0;
        for (i, r) in a.iter().enumerate() {
            assert!((8..=24).contains(&r.prompt.len()));
            assert!((2..=6).contains(&r.max_new_tokens));
            assert!(r.prompt.iter().all(|&t| t < 128));
            assert_eq!(r.priority, i as u32 % 3);
            assert!(
                r.arrival_time.get() > last_arrival,
                "arrivals must be strictly increasing"
            );
            last_arrival = r.arrival_time.get();
        }
        // Mean interarrival ≈ 1/rate: with 40 samples just sanity-bound it.
        let mean_gap = last_arrival / 40.0;
        assert!(
            (0.2 / 100.0..5.0 / 100.0).contains(&mean_gap),
            "mean interarrival {mean_gap} implausible for rate 100"
        );
        // Different seeds and rates move the trace.
        assert_ne!(generate_traffic(&cfg.with_seed(43)), a);
        let slow = TrafficConfig {
            arrival_rate: 1.0,
            ..cfg
        };
        assert!(
            generate_traffic(&slow).last().unwrap().arrival_time > a.last().unwrap().arrival_time,
            "lower arrival rate must spread arrivals out"
        );
    }

    #[test]
    fn prefix_templates_shape_traffic_without_perturbing_base_traces() {
        let base = TrafficConfig::new(30, 100.0, 128)
            .with_prompt_len(12, 24)
            .with_output_len(2, 4)
            .with_seed(7);
        let plain = generate_traffic(&base);
        // Enabling zero templates is the identity.
        assert_eq!(
            generate_traffic(&base.with_prefix_templates(0, 1, 1)),
            plain
        );

        let templated = generate_traffic(&base.with_prefix_templates(2, 10, 10));
        assert_eq!(
            templated,
            generate_traffic(&base.with_prefix_templates(2, 10, 10)),
            "templated traces are deterministic too"
        );
        // Template parameters only replace prompt *content*: any two
        // configurations share the arrival process and length draws, so the
        // prefix experiments sweep the shared fraction against fixed
        // traffic.
        let other = generate_traffic(&base.with_prefix_templates(5, 4, 8));
        for (t, o) in templated.iter().zip(&other) {
            assert_eq!(t.arrival_time, o.arrival_time);
            assert_eq!(t.max_new_tokens, o.max_new_tokens);
            assert_eq!(t.prompt.len(), o.prompt.len());
            assert!(t.prompt.iter().all(|&tok| tok < 128));
        }
        // Every prompt starts with one of the two 10-token templates, and
        // both templates are actually used.
        let heads: std::collections::BTreeSet<Vec<usize>> = templated
            .iter()
            .map(|r| r.prompt[..10.min(r.prompt.len())].to_vec())
            .collect();
        assert_eq!(heads.len(), 2, "30 draws over 2 templates hit both");
    }

    #[test]
    fn traffic_feeds_the_scheduler() {
        use clusterkv_model::{ModelConfig, ServeEngine};
        use clusterkv_sched::{SchedConfig, Scheduler};
        let cfg = TrafficConfig::new(6, 2_000.0, 128)
            .with_prompt_len(6, 16)
            .with_output_len(2, 4)
            .with_seed(9);
        let engine = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(3)
            .budget(Budget::new(16))
            .policy(Box::new(clusterkv_model::policy::OracleTopKFactory))
            .build()
            .unwrap();
        let mut sched = Scheduler::new(engine, SchedConfig::fcfs(4)).unwrap();
        sched.submit_all(generate_traffic(&cfg)).unwrap();
        let report = sched.run().unwrap();
        assert_eq!(report.requests.len(), 6);
        assert!(report.total_generated >= 6 * 2);
    }

    #[test]
    fn mean_of_empty_result_is_zero() {
        let r = EpisodeResult {
            method: "x".into(),
            budget: 8,
            per_step_recall: vec![],
            per_step_error: vec![],
            per_step_selected: vec![],
            stats: PolicyStats::default(),
            reuse: ReuseDistanceHistogram::default(),
        };
        assert_eq!(r.mean_recall(), 0.0);
        assert_eq!(r.mean_error(), 0.0);
        assert_eq!(r.reuse.hit_fraction_within(64), 0.0, "empty, not NaN");
    }

    #[test]
    fn reuse_distance_buckets_and_cumulative_fraction() {
        let mut h = ReuseDistanceHistogram::default();
        // First touches are cold.
        h.record(None);
        h.record(None);
        // Distance 0 -> bucket 0, distances 1 and 2 -> bucket 1,
        // distance 3 -> bucket 2.
        h.record(Some(0));
        h.record(Some(1));
        h.record(Some(2));
        h.record(Some(3));
        assert_eq!(h.buckets, vec![1, 2, 1]);
        assert_eq!(h.cold, 2);
        assert_eq!(h.total(), 6);
        // A 1-page LRU hits only bucket 0; 3 pages covers bucket 1 too
        // (distances < 3); 7 pages covers bucket 2.
        assert_eq!(h.hit_fraction_within(1), 1.0 / 6.0);
        assert_eq!(h.hit_fraction_within(3), 3.0 / 6.0);
        assert_eq!(h.hit_fraction_within(7), 4.0 / 6.0);
        // Partially covered buckets do not count.
        assert_eq!(h.hit_fraction_within(2), 1.0 / 6.0);

        let mut other = ReuseDistanceHistogram::default();
        other.record(Some(10));
        h.merge(&other);
        assert_eq!(h.total(), 7);
        assert_eq!(h.buckets.len(), 4);
    }

    #[test]
    fn harness_measures_stack_distances_of_paged_plans() {
        let e = Episode::generate(
            EpisodeConfig::default()
                .with_context_len(256)
                .with_decode_steps(16)
                .with_seed(7),
        );
        let factory = ClusterKvFactory::new(ClusterKvConfig::default());
        let mut selector = factory.create(HeadContext {
            layer: 0,
            head: 0,
            head_dim: e.config.head_dim,
        });
        let r = run_episode(&e, selector.as_mut(), Budget::new(32));
        assert!(r.reuse.total() > 0, "paged policy must record accesses");
        assert!(r.reuse.cold > 0, "every page is cold once");
        // Semantic locality: consecutive steps re-request most clusters, so
        // warm accesses exist and small stack distances dominate.
        assert!(r.reuse.total() > r.reuse.cold, "some reuse must occur");
        let close = r.reuse.hit_fraction_within(64);
        assert!(
            (0.0..=1.0).contains(&close),
            "cumulative fraction is a probability"
        );
    }
}
