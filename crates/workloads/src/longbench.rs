//! LongBench-style dataset profiles and score mapping (Fig. 9, Table I).
//!
//! The paper evaluates on eight LongBench datasets with GLM4-9B-Chat and
//! reports F1 (ROUGE-L for GovReport) scores per KV-cache budget. Neither the
//! datasets nor the model are available here, so each dataset is replaced by
//! a synthetic retrieval episode whose structural parameters (context length,
//! topical diversity, drift speed) follow the character of the original task,
//! and the score is computed as an interpolation between a floor score and
//! the dataset's Full-KV score, weighted by the measured fidelity of the
//! approximated attention (recall of important tokens and attention-output
//! error). Full KV therefore reproduces the paper's Full-KV score exactly,
//! and compressed methods land below it in proportion to how much attention
//! quality they lose — preserving the *ordering and gap structure* of Fig. 9
//! rather than the absolute numbers (see DESIGN.md §2).

use crate::harness::EpisodeResult;
use crate::semantic::EpisodeConfig;
use serde::{Deserialize, Serialize};

/// Scoring metric used by a dataset in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScoreMetric {
    /// Token-level F1 (QA-style datasets).
    F1,
    /// ROUGE-L (summarisation).
    RougeL,
}

impl std::fmt::Display for ScoreMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreMetric::F1 => write!(f, "F1"),
            ScoreMetric::RougeL => write!(f, "ROUGE-L"),
        }
    }
}

/// The eight LongBench datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LongBenchDataset {
    /// 2WikiMQA — multi-document QA.
    TwoWikiMqa,
    /// TriviaQA — few-shot QA.
    TriviaQa,
    /// HotpotQA — multi-hop QA.
    HotpotQa,
    /// MultiFieldQA — single-document QA.
    MultiFieldQa,
    /// MuSiQue — multi-hop QA.
    MuSiQue,
    /// NarrativeQA — long narrative QA.
    NarrativeQa,
    /// Qasper — scientific-paper QA.
    Qasper,
    /// GovReport — summarisation.
    GovReport,
}

impl LongBenchDataset {
    /// All eight datasets in the order of Fig. 9.
    pub fn all() -> [LongBenchDataset; 8] {
        [
            LongBenchDataset::TwoWikiMqa,
            LongBenchDataset::TriviaQa,
            LongBenchDataset::HotpotQa,
            LongBenchDataset::MultiFieldQa,
            LongBenchDataset::MuSiQue,
            LongBenchDataset::NarrativeQa,
            LongBenchDataset::Qasper,
            LongBenchDataset::GovReport,
        ]
    }

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            LongBenchDataset::TwoWikiMqa => "2WikiMQA",
            LongBenchDataset::TriviaQa => "TriviaQA",
            LongBenchDataset::HotpotQa => "HotpotQA",
            LongBenchDataset::MultiFieldQa => "MultiFieldQA",
            LongBenchDataset::MuSiQue => "MuSiQue",
            LongBenchDataset::NarrativeQa => "NarrativeQA",
            LongBenchDataset::Qasper => "Qasper",
            LongBenchDataset::GovReport => "GovReport",
        }
    }

    /// Evaluation profile of this dataset.
    pub fn profile(self) -> LongBenchProfile {
        // `full_kv_score` values are the Full-KV scores read off Fig. 9 /
        // Table I of the paper; `floor_score` is the score a method that
        // retains almost nothing useful would get (roughly the low end of
        // each plot's y-axis).
        let (context_len, num_topics, drift, metric, full, floor) = match self {
            LongBenchDataset::TwoWikiMqa => (4096, 24, 6, ScoreMetric::F1, 50.0, 38.0),
            LongBenchDataset::TriviaQa => (2048, 16, 8, ScoreMetric::F1, 89.0, 72.0),
            LongBenchDataset::HotpotQa => (4096, 28, 5, ScoreMetric::F1, 58.0, 43.0),
            LongBenchDataset::MultiFieldQa => (3072, 20, 6, ScoreMetric::F1, 52.0, 34.0),
            LongBenchDataset::MuSiQue => (6144, 32, 4, ScoreMetric::F1, 34.0, 19.0),
            LongBenchDataset::NarrativeQa => (8192, 36, 4, ScoreMetric::F1, 26.0, 17.0),
            LongBenchDataset::Qasper => (3072, 24, 6, ScoreMetric::F1, 42.0, 33.0),
            LongBenchDataset::GovReport => (6144, 20, 10, ScoreMetric::RougeL, 31.0, 27.5),
        };
        LongBenchProfile {
            dataset: self,
            metric,
            full_kv_score: full,
            floor_score: floor,
            episode: EpisodeConfig {
                context_len,
                decode_steps: 48,
                head_dim: 64,
                num_topics,
                sink_tokens: 16,
                outlier_channels: 2,
                drift_period: drift,
                noise: 0.25,
                seed: 0xB000 + self as u64,
            },
        }
    }
}

impl std::fmt::Display for LongBenchDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Evaluation profile of one dataset: episode parameters plus score mapping.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LongBenchProfile {
    /// The dataset this profile describes.
    pub dataset: LongBenchDataset,
    /// Scoring metric used in the paper for this dataset.
    pub metric: ScoreMetric,
    /// Score obtained with the full KV cache in the paper.
    pub full_kv_score: f64,
    /// Score assigned to a method that preserves no useful attention.
    pub floor_score: f64,
    /// Episode generator parameters (scaled-down context length).
    pub episode: EpisodeConfig,
}

impl LongBenchProfile {
    /// Map measured attention fidelity to a dataset score.
    ///
    /// Fidelity is the mean recall of the truly important (top-`B`) tokens —
    /// the same quantity the paper's Fig. 11 measures — and the score
    /// interpolates between the floor and the Full-KV score. Full attention
    /// (recall 1) maps exactly to `full_kv_score`.
    pub fn score(&self, result: &EpisodeResult) -> f64 {
        let fidelity = self.fidelity(result);
        self.floor_score + (self.full_kv_score - self.floor_score) * fidelity
    }

    /// Attention fidelity in `[0, 1]` derived from an episode result.
    pub fn fidelity(&self, result: &EpisodeResult) -> f64 {
        result.mean_recall().clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(recall: f64, error: f64) -> EpisodeResult {
        EpisodeResult {
            method: "test".into(),
            budget: 256,
            per_step_recall: vec![recall; 4],
            per_step_error: vec![error; 4],
            per_step_selected: vec![256; 4],
            stats: clusterkv_model::policy::PolicyStats::default(),
            reuse: Default::default(),
        }
    }

    #[test]
    fn all_profiles_are_consistent() {
        for d in LongBenchDataset::all() {
            let p = d.profile();
            assert!(p.full_kv_score > p.floor_score, "{d}");
            assert!(p.episode.context_len >= 2048, "{d}");
            assert!(!d.name().is_empty());
            assert_eq!(p.dataset, d);
        }
        assert_eq!(LongBenchDataset::all().len(), 8);
    }

    #[test]
    fn perfect_fidelity_reproduces_full_kv_score() {
        let p = LongBenchDataset::TwoWikiMqa.profile();
        let s = p.score(&result(1.0, 0.0));
        assert!((s - p.full_kv_score).abs() < 1e-9);
    }

    #[test]
    fn zero_fidelity_hits_the_floor() {
        let p = LongBenchDataset::Qasper.profile();
        let s = p.score(&result(0.0, 1.0));
        assert!((s - p.floor_score).abs() < 1e-9);
    }

    #[test]
    fn score_is_monotone_in_recall() {
        let p = LongBenchDataset::HotpotQa.profile();
        assert!(p.score(&result(0.9, 0.1)) > p.score(&result(0.5, 0.1)));
        assert!(p.score(&result(0.7, 0.1)) > p.score(&result(0.3, 0.1)));
    }

    #[test]
    fn govreport_uses_rouge() {
        assert_eq!(
            LongBenchDataset::GovReport.profile().metric,
            ScoreMetric::RougeL
        );
        assert_eq!(ScoreMetric::RougeL.to_string(), "ROUGE-L");
        assert_eq!(ScoreMetric::F1.to_string(), "F1");
    }

    #[test]
    fn seeds_differ_across_datasets() {
        let seeds: std::collections::HashSet<u64> = LongBenchDataset::all()
            .into_iter()
            .map(|d| d.profile().episode.seed)
            .collect();
        assert_eq!(seeds.len(), 8);
    }
}
