//! Counting-allocator proof of the kernel layer's zero-allocation contract
//! (DESIGN.md §6): once a [`Workspace`] is warm, the attention + selection
//! hot-loop kernels — scoring, ranking, gather-attend, norm maintenance —
//! perform **zero** heap allocations per decode step.
//!
//! The whole proof lives in a single `#[test]` so no concurrent test in this
//! binary can allocate while the counters are being read (the allocator is
//! process-global). Residual per-step allocations of the *serving* loop (a
//! `SelectionPlan`'s index vector, per-session outputs) are outside the
//! kernel layer and covered instead by the workspace-reuse steady-state
//! tests in `serve.rs`, `selection.rs` and `policy.rs`.

// The one sanctioned `unsafe` user in the workspace (`unsafe_code` is denied
// via [workspace.lints]): implementing GlobalAlloc is inherently unsafe.
// This file is allowlisted in clusterkv-analyzer's UNSAFE_ALLOWLIST; every
// block below carries the SAFETY note the unsafe-gate lint requires.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: every method delegates to the System allocator after bumping an
// atomic counter; the GlobalAlloc contract (layout validity, pointer
// provenance) is upheld verbatim by that delegation.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's layout to System untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards the caller's pointer/layout pair to System untouched.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards the caller's pointer, layout, and new size to System
    // untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn warm_kernel_hot_loop_performs_zero_allocations() {
    use clusterkv_kvcache::KvStore;
    use clusterkv_model::attention::{attend_selected_ws, full_attention_weights_ws};
    use clusterkv_tensor::kernels::{
        attention_weights_into, gather_matvec_t_into, matvec_t_into, norm_sq, row_norms_sq_into,
        Workspace,
    };
    use clusterkv_tensor::rng::{gaussian_vec, seeded};
    use clusterkv_tensor::vector::argsort_descending_into;
    use clusterkv_tensor::Matrix;

    // ---- setup (allocates freely) ------------------------------------
    let n = 1024;
    let dim = 64;
    let mut rng = seeded(0x2A);
    let keys = Matrix::from_flat(n, dim, gaussian_vec(&mut rng, n * dim, 0.0, 1.0)).unwrap();
    let values = Matrix::from_flat(n, dim, gaussian_vec(&mut rng, n * dim, 0.0, 1.0)).unwrap();
    let mut store = KvStore::new(dim);
    store.append_batch(&keys, &values);
    let query = gaussian_vec(&mut rng, dim, 0.0, 1.0);
    let selected: Vec<usize> = (0..n).step_by(4).collect();
    let mut ws = Workspace::new();

    // ---- warm-up: one pass sizes every buffer ------------------------
    matvec_t_into(&keys, &query, &mut ws.scores);
    argsort_descending_into(&ws.scores, &mut ws.idx);
    gather_matvec_t_into(&keys, &selected, &query, &mut ws.scores);
    attention_weights_into(&keys, Some(&selected), &query, &mut ws.weights);
    attend_selected_ws(&store, &query, &selected, &mut ws);
    full_attention_weights_ws(&store, &query, &mut ws);
    row_norms_sq_into(&keys, &mut ws.row_norms);

    // ---- steady state: the decode-step kernel sequence, repeated -----
    let mut sink = 0.0f32;
    let before = allocations();
    for _ in 0..100 {
        // Selection: score every centroid/key row, rank the scores.
        matvec_t_into(&keys, &query, &mut ws.scores);
        argsort_descending_into(&ws.scores, &mut ws.idx);
        // Attention over the selected tokens: fused gather + softmax +
        // weighted sum into the workspace.
        attend_selected_ws(&store, &query, &selected, &mut ws);
        sink += ws.out[0] + ws.scores[ws.idx[0]];
        // Trace-style exact weights via the no-index-vec full path.
        full_attention_weights_ws(&store, &query, &mut ws);
        // Norm-cache maintenance (the Gram-trick ingredients).
        ws.row_norms.clear();
        sink += norm_sq(&query);
        row_norms_sq_into(&keys, &mut ws.row_norms);
    }
    let after = allocations();
    assert!(sink.is_finite());
    assert_eq!(
        after - before,
        0,
        "warm hot-loop kernels must not allocate (got {} allocations over 100 steps)",
        after - before
    );
}
