//! Serving-API tests: batched multi-session decoding must be observationally
//! identical to sequential single-session inference, for ClusterKV and the
//! baselines, and the session lifecycle must isolate sequences completely.
//! The thread-count parity suite at the bottom additionally proves that the
//! rayon-backed engine produces byte-identical token streams, cache
//! accounting and modeled latency at 1, 2 and N worker threads.

mod common;

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_baselines::QuestFactory;
use clusterkv_kvcache::stats::PrefetchStats;
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_model::policy::SelectorFactory;
use clusterkv_model::{InferenceEngine, ModelConfig, PrefetchConfig, ServeEngine, SessionId};
use common::{thread_env_lock, with_thread_count};

const SEED: u64 = 21;
const DECODE_STEPS: usize = 8;
const NUM_SESSIONS: usize = 4;

fn prompts() -> Vec<Vec<usize>> {
    (0..NUM_SESSIONS)
        .map(|s| {
            (0..32 + 4 * s)
                .map(|i| (i * (3 + s) + 7 * s) % 128)
                .collect()
        })
        .collect()
}

fn clusterkv_factory() -> ClusterKvFactory {
    ClusterKvFactory::new(
        ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(8)
            .with_decode_cluster_period(8)
            .with_decode_new_clusters(2),
    )
}

/// N sequential single-session runs through the legacy adapter.
fn sequential_streams(factory: &dyn SelectorFactory, budget: usize) -> Vec<Vec<usize>> {
    prompts()
        .iter()
        .map(|prompt| {
            let mut engine = InferenceEngine::with_synthetic_weights(
                ModelConfig::tiny(),
                SEED,
                factory,
                Budget::new(budget),
            )
            .unwrap();
            engine.generate(prompt, DECODE_STEPS).unwrap()
        })
        .collect()
}

/// The same N sequences decoded concurrently, in lockstep, through
/// `decode_batch`.
fn batched_streams(factory: &dyn SelectorFactory, budget: usize) -> Vec<Vec<usize>> {
    let mut engine = ServeEngine::builder(ModelConfig::tiny())
        .synthetic_weights(SEED)
        .budget(Budget::new(budget))
        .build()
        .unwrap();
    let ids: Vec<SessionId> = (0..NUM_SESSIONS)
        .map(|_| engine.create_session_with(factory).unwrap())
        .collect();
    for (id, prompt) in ids.iter().zip(prompts()) {
        engine.prefill(*id, &prompt).unwrap();
    }
    let mut streams = vec![Vec::new(); NUM_SESSIONS];
    for _ in 0..DECODE_STEPS {
        let outs = engine.decode_batch(&ids).unwrap();
        for (stream, out) in streams.iter_mut().zip(&outs) {
            stream.push(out.next_token);
        }
    }
    for &id in &ids {
        engine.release(id).unwrap();
    }
    streams
}

#[test]
fn clusterkv_batched_decode_matches_sequential_runs() {
    let factory = clusterkv_factory();
    let sequential = sequential_streams(&factory, 24);
    let batched = batched_streams(&factory, 24);
    assert_eq!(
        batched, sequential,
        "ClusterKV: interleaved decode_batch must reproduce sequential streams byte for byte"
    );
    // The streams are genuinely distinct sequences, so the parity above is
    // not vacuous.
    assert!(
        sequential
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1,
        "prompts should produce distinct continuations: {sequential:?}"
    );
}

#[test]
fn quest_batched_decode_matches_sequential_runs() {
    let factory = QuestFactory::default();
    let sequential = sequential_streams(&factory, 24);
    let batched = batched_streams(&factory, 24);
    assert_eq!(
        batched, sequential,
        "Quest: interleaved decode_batch must reproduce sequential streams byte for byte"
    );
}

#[test]
fn batched_decode_is_invariant_to_batch_order() {
    let factory = clusterkv_factory();
    let forward = batched_streams(&factory, 24);

    // Decode the same sessions with the batch order reversed every step.
    let mut engine = ServeEngine::builder(ModelConfig::tiny())
        .synthetic_weights(SEED)
        .budget(Budget::new(24))
        .policy(Box::new(factory))
        .build()
        .unwrap();
    let ids: Vec<SessionId> = (0..NUM_SESSIONS)
        .map(|_| engine.create_session().unwrap())
        .collect();
    for (id, prompt) in ids.iter().zip(prompts()) {
        engine.prefill(*id, &prompt).unwrap();
    }
    let mut streams = vec![Vec::new(); NUM_SESSIONS];
    let reversed: Vec<SessionId> = ids.iter().rev().copied().collect();
    for _ in 0..DECODE_STEPS {
        let outs = engine.decode_batch(&reversed).unwrap();
        for (out, &id) in outs.iter().zip(&reversed) {
            let idx = ids.iter().position(|&x| x == id).unwrap();
            streams[idx].push(out.next_token);
        }
    }
    assert_eq!(
        streams, forward,
        "batch order must not influence any session's stream"
    );
}

#[test]
fn releasing_a_session_does_not_disturb_the_others() {
    let factory = clusterkv_factory();
    let reference = batched_streams(&factory, 24);

    let mut engine = ServeEngine::builder(ModelConfig::tiny())
        .synthetic_weights(SEED)
        .budget(Budget::new(24))
        .policy(Box::new(factory))
        .build()
        .unwrap();
    let ids: Vec<SessionId> = (0..NUM_SESSIONS)
        .map(|_| engine.create_session().unwrap())
        .collect();
    for (id, prompt) in ids.iter().zip(prompts()) {
        engine.prefill(*id, &prompt).unwrap();
    }
    // Decode everything for half the steps, drop session 0, finish the rest.
    let half = DECODE_STEPS / 2;
    let mut streams = vec![Vec::new(); NUM_SESSIONS];
    for _ in 0..half {
        for (stream, out) in streams.iter_mut().zip(engine.decode_batch(&ids).unwrap()) {
            stream.push(out.next_token);
        }
    }
    let report = engine.release(ids[0]).unwrap();
    assert_eq!(report.generated_tokens, half);
    let rest = &ids[1..];
    for _ in half..DECODE_STEPS {
        for (stream, out) in streams[1..]
            .iter_mut()
            .zip(engine.decode_batch(rest).unwrap())
        {
            stream.push(out.next_token);
        }
    }
    for s in 1..NUM_SESSIONS {
        assert_eq!(
            streams[s], reference[s],
            "session {s} diverged after a release"
        );
    }
}

/// The same N sequences decoded one by one, each in its own engine with the
/// given cluster-cache capacity.
fn sequential_streams_with_cache(
    factory: &dyn SelectorFactory,
    budget: usize,
    capacity: Bytes,
) -> Vec<Vec<usize>> {
    prompts()
        .iter()
        .map(|prompt| {
            let mut engine = ServeEngine::builder(ModelConfig::tiny())
                .synthetic_weights(SEED)
                .budget(Budget::new(budget))
                .kv_cache_capacity(capacity)
                .build()
                .unwrap();
            let id = engine.create_session_with(factory).unwrap();
            engine.generate(id, prompt, DECODE_STEPS).unwrap()
        })
        .collect()
}

/// The same N sequences decoded concurrently through `decode_batch`, with
/// the given cluster-cache capacity.
fn batched_streams_with_cache(
    factory: &dyn SelectorFactory,
    budget: usize,
    capacity: Bytes,
) -> Vec<Vec<usize>> {
    let mut engine = ServeEngine::builder(ModelConfig::tiny())
        .synthetic_weights(SEED)
        .budget(Budget::new(budget))
        .kv_cache_capacity(capacity)
        .build()
        .unwrap();
    let ids: Vec<SessionId> = (0..NUM_SESSIONS)
        .map(|_| engine.create_session_with(factory).unwrap())
        .collect();
    for (id, prompt) in ids.iter().zip(prompts()) {
        engine.prefill(*id, &prompt).unwrap();
    }
    let mut streams = vec![Vec::new(); NUM_SESSIONS];
    for _ in 0..DECODE_STEPS {
        let outs = engine.decode_batch(&ids).unwrap();
        for (stream, out) in streams.iter_mut().zip(&outs) {
            stream.push(out.next_token);
        }
    }
    streams
}

#[test]
fn token_streams_are_invariant_to_cluster_cache_residency() {
    // Residency is accounting and latency only: enabling the cluster cache
    // (at any capacity) must leave every decode token stream byte-identical,
    // for the cluster-paged policy and the page-paged baseline, across both
    // batched and sequential decoding.
    let clusterkv = clusterkv_factory();
    let quest = QuestFactory::default();
    let factories: [&dyn SelectorFactory; 2] = [&clusterkv, &quest];
    // Disabled (pure offload), a tight cache and an effectively infinite one.
    let capacities = [Bytes(0), Bytes(2 * 24 * 32), Bytes(1 << 22)];
    for factory in factories {
        let reference = sequential_streams(factory, 24);
        assert!(
            reference.iter().any(|s| !s.is_empty()),
            "reference streams must be non-trivial"
        );
        for capacity in capacities {
            let sequential = sequential_streams_with_cache(factory, 24, capacity);
            assert_eq!(
                sequential,
                reference,
                "{}: sequential streams changed with cache capacity {capacity}",
                factory.name()
            );
            let batched = batched_streams_with_cache(factory, 24, capacity);
            assert_eq!(
                batched,
                reference,
                "{}: batched streams changed with cache capacity {capacity}",
                factory.name()
            );
        }
    }
}

#[test]
fn cached_sessions_report_hits_and_reduced_recall_traffic() {
    let factory = clusterkv_factory();
    let stats_at = |capacity: Bytes| {
        let mut engine = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(SEED)
            .budget(Budget::new(24))
            .kv_cache_capacity(capacity)
            .build()
            .unwrap();
        let id = engine.create_session_with(&factory).unwrap();
        engine.generate(id, &prompts()[0], DECODE_STEPS).unwrap();
        engine.release(id).unwrap()
    };
    let offload = stats_at(Bytes(0));
    let cached = stats_at(Bytes(1 << 22));
    assert_eq!(offload.stats.cache.hits, 0);
    assert!(offload.stats.cache.misses > 0);
    assert!(cached.cache_hit_rate() > offload.cache_hit_rate());
    assert!(
        cached.bytes_recalled() < offload.bytes_recalled(),
        "cache must cut recalled bytes: {} vs {}",
        cached.bytes_recalled(),
        offload.bytes_recalled()
    );
    assert!(cached.modeled_decode_time < offload.modeled_decode_time);
}

#[test]
fn per_session_stats_match_single_session_runs() {
    let factory = clusterkv_factory();
    // Single-session reference stats.
    let mut single = InferenceEngine::with_synthetic_weights(
        ModelConfig::tiny(),
        SEED,
        &factory,
        Budget::new(24),
    )
    .unwrap();
    let prompt = &prompts()[0];
    single.generate(prompt, DECODE_STEPS).unwrap();
    let reference = single.policy_stats();
    assert!(reference.scored_vectors > 0);

    // The same sequence decoded in a busy engine accumulates identical
    // per-session stats.
    let mut engine = ServeEngine::builder(ModelConfig::tiny())
        .synthetic_weights(SEED)
        .budget(Budget::new(24))
        .policy(Box::new(factory))
        .build()
        .unwrap();
    let ids: Vec<SessionId> = (0..NUM_SESSIONS)
        .map(|_| engine.create_session().unwrap())
        .collect();
    for (id, p) in ids.iter().zip(prompts()) {
        engine.prefill(*id, &p).unwrap();
    }
    for _ in 0..DECODE_STEPS {
        engine.decode_batch(&ids).unwrap();
    }
    assert_eq!(engine.session_stats(ids[0]).unwrap(), reference);
    let report = engine.release(ids[0]).unwrap();
    assert_eq!(report.stats, reference);
}

/// Everything one mixed-policy run produces that must be invariant to the
/// worker-thread count.
#[derive(Debug, PartialEq)]
struct MixedRunObservables {
    streams: Vec<Vec<usize>>,
    hits: Vec<u64>,
    misses: Vec<u64>,
    bytes_recalled: Vec<u64>,
    /// Bit patterns of each session's modeled decode time (exact f64 parity).
    modeled_bits: Vec<u64>,
    /// Bit patterns of each session's cache hit rate.
    hit_rate_bits: Vec<u64>,
}

/// The mixed-policy multi-session scenario: ClusterKV and Quest sessions
/// side by side in one engine with a bounded cluster cache, decoded in
/// lockstep through `decode_batch`.
fn mixed_policy_run(batched: bool) -> MixedRunObservables {
    let clusterkv = clusterkv_factory();
    let quest = QuestFactory::default();
    let mut engine = ServeEngine::builder(ModelConfig::tiny())
        .synthetic_weights(SEED)
        .budget(Budget::new(24))
        .kv_cache_capacity(Bytes(2 * 24 * 32))
        .build()
        .unwrap();
    let ids: Vec<SessionId> = (0..NUM_SESSIONS)
        .map(|s| {
            if s % 2 == 0 {
                engine.create_session_with(&clusterkv).unwrap()
            } else {
                engine.create_session_with(&quest).unwrap()
            }
        })
        .collect();
    for (id, prompt) in ids.iter().zip(prompts()) {
        engine.prefill(*id, &prompt).unwrap();
    }
    let mut streams = vec![Vec::new(); NUM_SESSIONS];
    if batched {
        for _ in 0..DECODE_STEPS {
            let outs = engine.decode_batch(&ids).unwrap();
            for (stream, out) in streams.iter_mut().zip(&outs) {
                stream.push(out.next_token);
            }
        }
    } else {
        for (stream, &id) in streams.iter_mut().zip(&ids) {
            for _ in 0..DECODE_STEPS {
                stream.push(engine.decode_batch(&[id]).unwrap()[0].next_token);
            }
        }
    }
    let mut observables = MixedRunObservables {
        streams,
        hits: Vec::new(),
        misses: Vec::new(),
        bytes_recalled: Vec::new(),
        modeled_bits: Vec::new(),
        hit_rate_bits: Vec::new(),
    };
    for &id in &ids {
        let report = engine.release(id).unwrap();
        observables.hits.push(report.stats.cache.hits);
        observables.misses.push(report.stats.cache.misses);
        observables.bytes_recalled.push(report.bytes_recalled().0);
        observables
            .modeled_bits
            .push(report.modeled_decode_time.get().to_bits());
        observables
            .hit_rate_bits
            .push(report.cache_hit_rate().to_bits());
    }
    observables
}

/// Everything one run produces that must be invariant to how the prompt was
/// chunked during prefill: the decode streams, the per-session policy stats
/// (selection work), and the full cache/transfer/latency accounting.
#[derive(Debug, PartialEq)]
struct ChunkedRunObservables {
    streams: Vec<Vec<usize>>,
    scored: Vec<u64>,
    hits: Vec<u64>,
    misses: Vec<u64>,
    bytes_recalled: Vec<u64>,
    modeled_bits: Vec<u64>,
}

/// Decode `DECODE_STEPS` for `NUM_SESSIONS` sessions whose prompts were
/// prefilled in chunks of `chunk` tokens (`None` = monolithic `prefill`),
/// under a bounded cluster cache so residency accounting is non-trivial.
fn chunked_prefill_run(
    factory: &dyn SelectorFactory,
    chunk: Option<usize>,
) -> ChunkedRunObservables {
    let mut engine = ServeEngine::builder(ModelConfig::tiny())
        .synthetic_weights(SEED)
        .budget(Budget::new(24))
        .kv_cache_capacity(Bytes(2 * 24 * 32))
        .build()
        .unwrap();
    let ids: Vec<SessionId> = (0..NUM_SESSIONS)
        .map(|_| engine.create_session_with(factory).unwrap())
        .collect();
    for (id, prompt) in ids.iter().zip(prompts()) {
        match chunk {
            None => {
                engine.prefill(*id, &prompt).unwrap();
            }
            Some(size) => {
                for piece in prompt.chunks(size) {
                    engine.prefill_chunk(*id, piece).unwrap();
                }
                engine.finish_prefill(*id).unwrap();
            }
        }
    }
    let mut streams = vec![Vec::new(); NUM_SESSIONS];
    for _ in 0..DECODE_STEPS {
        let outs = engine.decode_batch(&ids).unwrap();
        for (stream, out) in streams.iter_mut().zip(&outs) {
            stream.push(out.next_token);
        }
    }
    let mut observables = ChunkedRunObservables {
        streams,
        scored: Vec::new(),
        hits: Vec::new(),
        misses: Vec::new(),
        bytes_recalled: Vec::new(),
        modeled_bits: Vec::new(),
    };
    for &id in &ids {
        let report = engine.release(id).unwrap();
        observables.scored.push(report.stats.scored_vectors);
        observables.hits.push(report.stats.cache.hits);
        observables.misses.push(report.stats.cache.misses);
        observables.bytes_recalled.push(report.bytes_recalled().0);
        observables
            .modeled_bits
            .push(report.modeled_decode_time.get().to_bits());
    }
    observables
}

#[test]
fn chunked_prefill_parity_across_chunk_sizes_and_threads() {
    // The acceptance gate of the chunked-prefill refactor: for the
    // cluster-paged policy (prefill clustering reconciles on the final
    // chunk) and the page-paged baseline (naturally incremental), any chunk
    // size — including chunk 1 and one chunk covering the whole prompt —
    // must reproduce the monolithic prefill byte for byte: token streams,
    // selector stats, cache hit accounting and modeled latency, at every
    // worker-thread count.
    let _guard = thread_env_lock();
    let clusterkv = clusterkv_factory();
    let quest = QuestFactory::default();
    let factories: [&dyn SelectorFactory; 2] = [&clusterkv, &quest];
    for factory in factories {
        let reference = with_thread_count(1, || chunked_prefill_run(factory, None));
        assert!(
            reference.streams.iter().all(|s| s.len() == DECODE_STEPS),
            "scenario must be non-trivial"
        );
        assert!(
            reference.misses.iter().any(|&m| m > 0),
            "{}: the bounded cache must produce recall traffic for the \
             accounting parity to be meaningful",
            factory.name()
        );
        for threads in [1usize, 2, 8] {
            for chunk in [1usize, 7, 64, usize::MAX] {
                let run = with_thread_count(threads, || chunked_prefill_run(factory, Some(chunk)));
                assert_eq!(
                    run,
                    reference,
                    "{}: chunked prefill (chunk {chunk}, {threads} threads) \
                     diverged from monolithic prefill",
                    factory.name()
                );
            }
        }
    }
}

#[test]
fn thread_count_parity_for_batched_mixed_policy_decode() {
    let _guard = thread_env_lock();
    // 1 worker, 2 workers, and more workers than sessions (forcing chunk
    // sizes of one session each plus idle capacity).
    let reference = with_thread_count(1, || mixed_policy_run(true));
    assert!(
        reference.streams.iter().any(|s| !s.is_empty()),
        "scenario must be non-trivial"
    );
    assert!(
        reference.misses.iter().any(|&m| m > 0),
        "the tight cache must produce recall traffic for parity to be meaningful"
    );
    for threads in [2usize, 8] {
        let run = with_thread_count(threads, || mixed_policy_run(true));
        assert_eq!(
            run, reference,
            "streams / hit rates / recalled bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn thread_count_parity_between_batched_and_sequential_decode() {
    let _guard = thread_env_lock();
    // Batched at N threads == session-at-a-time at 1 thread: the full
    // contract of the parallel engine in one assertion.
    let sequential_1 = with_thread_count(1, || mixed_policy_run(false));
    for threads in [2usize, 4] {
        let batched_n = with_thread_count(threads, || mixed_policy_run(true));
        assert_eq!(
            batched_n, sequential_1,
            "batched {threads}-thread decode must reproduce 1-thread sequential decode"
        );
    }
}

/// Shared-template prompts for the prefix-store parity case: three users
/// over one 24-token template (each with a distinct suffix) plus one
/// unrelated prompt, so a single run exercises the store's hit, divergence
/// and miss paths.
fn prefix_prompts() -> Vec<Vec<usize>> {
    let template: Vec<usize> = (0..24).map(|i| (i * 5 + 11) % 128).collect();
    let mut prompts: Vec<Vec<usize>> = (0..3)
        .map(|user| {
            let mut p = template.clone();
            p.extend((0..8).map(|i| (i * 13 + 29 * (user + 1)) % 128));
            p
        })
        .collect();
    prompts.push((0..20).map(|i| (i * 9 + 3) % 128).collect());
    prompts
}

/// Serve the shared-template prompts session-at-a-time: chunked prefill
/// (monolithic when `chunk == 0`), then `DECODE_STEPS` decode steps. Later
/// sessions reuse whatever earlier sessions donated to the prefix store.
/// Returns the token streams plus how many prompt positions the store
/// fast-pathed in total.
fn prefix_run(store: bool, chunk: usize) -> (Vec<Vec<usize>>, usize) {
    let factory = clusterkv_factory();
    let mut builder = ServeEngine::builder(ModelConfig::tiny())
        .synthetic_weights(SEED)
        .budget(Budget::new(24));
    if store {
        builder = builder.prefix_store(Bytes(1 << 20));
    }
    let mut engine = builder.build().unwrap();
    let mut streams = Vec::new();
    let mut fastpathed = 0;
    for prompt in prefix_prompts() {
        let id = engine.create_session_with(&factory).unwrap();
        if chunk == 0 {
            engine.prefill(id, &prompt).unwrap();
        } else {
            for piece in prompt.chunks(chunk) {
                engine.prefill_chunk(id, piece).unwrap();
            }
            engine.finish_prefill(id).unwrap();
        }
        let (_, fast) = engine.session_prefix_tokens(id).unwrap();
        fastpathed += fast;
        let mut stream = Vec::with_capacity(DECODE_STEPS);
        for _ in 0..DECODE_STEPS {
            stream.push(engine.decode_batch(&[id]).unwrap()[0].next_token);
        }
        streams.push(stream);
    }
    (streams, fastpathed)
}

#[test]
fn prefix_store_parity_across_chunkings_and_threads() {
    // The acceptance gate of cross-session prefix sharing: with the store
    // enabled, sessions that reuse shared KV pages (and adopt donated
    // clustering state) must generate exactly what cold sessions generate —
    // at every chunking and every worker-thread count.
    let _guard = thread_env_lock();
    let (reference, _) = with_thread_count(1, || prefix_run(false, 0));
    assert!(
        reference
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1,
        "prompts should produce distinct continuations"
    );
    for store in [false, true] {
        for chunk in [0usize, 5, 24] {
            for threads in [1usize, 2, 8] {
                let (streams, fastpathed) = with_thread_count(threads, || prefix_run(store, chunk));
                assert_eq!(
                    streams, reference,
                    "prefix store parity broke (store {store}, chunk {chunk}, \
                     {threads} threads)"
                );
                if store && chunk != 0 {
                    assert!(
                        fastpathed > 0,
                        "store must fast-path shared positions (chunk {chunk}, \
                         {threads} threads)"
                    );
                }
            }
        }
    }
}

/// Like [`chunked_prefill_run`] but with speculative prefetch configured on
/// the engine; returns the shared observables plus the run's merged
/// prefetch counters (which are *not* part of the parity comparison — they
/// are what prefetch is allowed to change).
fn prefetch_chunked_run(
    factory: &dyn SelectorFactory,
    chunk: Option<usize>,
    prefetch: PrefetchConfig,
) -> (ChunkedRunObservables, PrefetchStats) {
    let mut engine = ServeEngine::builder(ModelConfig::tiny())
        .synthetic_weights(SEED)
        .budget(Budget::new(24))
        .kv_cache_capacity(Bytes(2 * 24 * 32))
        .prefetch(prefetch)
        .build()
        .unwrap();
    let ids: Vec<SessionId> = (0..NUM_SESSIONS)
        .map(|_| engine.create_session_with(factory).unwrap())
        .collect();
    for (id, prompt) in ids.iter().zip(prompts()) {
        match chunk {
            None => {
                engine.prefill(*id, &prompt).unwrap();
            }
            Some(size) => {
                for piece in prompt.chunks(size) {
                    engine.prefill_chunk(*id, piece).unwrap();
                }
                engine.finish_prefill(*id).unwrap();
            }
        }
    }
    let mut streams = vec![Vec::new(); NUM_SESSIONS];
    for _ in 0..DECODE_STEPS {
        let outs = engine.decode_batch(&ids).unwrap();
        for (stream, out) in streams.iter_mut().zip(&outs) {
            stream.push(out.next_token);
        }
    }
    let mut observables = ChunkedRunObservables {
        streams,
        scored: Vec::new(),
        hits: Vec::new(),
        misses: Vec::new(),
        bytes_recalled: Vec::new(),
        modeled_bits: Vec::new(),
    };
    let mut stats = PrefetchStats::new();
    for &id in &ids {
        let report = engine.release(id).unwrap();
        observables.scored.push(report.stats.scored_vectors);
        observables.hits.push(report.stats.cache.hits);
        observables.misses.push(report.stats.cache.misses);
        observables.bytes_recalled.push(report.bytes_recalled().0);
        observables
            .modeled_bits
            .push(report.modeled_decode_time.get().to_bits());
        stats.merge(&report.prefetch);
    }
    (observables, stats)
}

#[test]
fn prefetch_parity_across_chunkings_threads_and_policies() {
    // The hard invariant of the speculative prefetcher: staging changes
    // *when* bytes move, never *what* attends. With overlap pricing off
    // (the staging-only probe), everything — token streams, selection work,
    // hit/miss counts, recalled bytes, and the modeled decode clock down to
    // the bit — must match a prefetch-disabled engine, at every prefill
    // chunking, every worker-thread count, for the cluster-paged policy and
    // the page-paged baseline alike. With overlap pricing on, only the
    // clock may move; all other observables stay pinned.
    let _guard = thread_env_lock();
    let staging = Bytes(1 << 20);
    let clusterkv = clusterkv_factory();
    let quest = QuestFactory::default();
    let factories: [&dyn SelectorFactory; 2] = [&clusterkv, &quest];
    for factory in factories {
        let (reference, off_stats) = with_thread_count(1, || {
            prefetch_chunked_run(factory, None, PrefetchConfig::disabled())
        });
        assert_eq!(
            off_stats,
            PrefetchStats::new(),
            "{}: a disabled engine must not touch the staging buffer",
            factory.name()
        );
        assert!(
            reference.misses.iter().any(|&m| m > 0),
            "{}: the bounded cache must produce recall traffic, or the \
             parity below is vacuous",
            factory.name()
        );
        // Staging statistics must themselves be deterministic: identical at
        // every (chunk, threads) grid point, because nominations are
        // collected in the sequential phase-2 head order and staged with
        // deterministic LRU stamps.
        let mut probe_stats: Option<PrefetchStats> = None;
        let mut overlap_stats: Option<PrefetchStats> = None;
        for threads in [1usize, 2, 8] {
            for chunk in [1usize, 7, 64, usize::MAX] {
                let (probe, stats) = with_thread_count(threads, || {
                    prefetch_chunked_run(
                        factory,
                        Some(chunk),
                        PrefetchConfig::staging_only(staging),
                    )
                });
                assert_eq!(
                    probe,
                    reference,
                    "{}: staging-only run (chunk {chunk}, {threads} threads) \
                     diverged from the prefetch-off engine",
                    factory.name()
                );
                assert!(
                    stats.staged_pages > 0 && stats.used_pages > 0,
                    "{}: the probe must stage and promote pages for the \
                     pinning to be meaningful (chunk {chunk})",
                    factory.name()
                );
                match &probe_stats {
                    None => probe_stats = Some(stats),
                    Some(first) => assert_eq!(
                        &stats,
                        first,
                        "{}: staging counters drifted across the grid \
                         (chunk {chunk}, {threads} threads)",
                        factory.name()
                    ),
                }

                let (on, stats) = with_thread_count(threads, || {
                    prefetch_chunked_run(factory, Some(chunk), PrefetchConfig::lookahead(staging))
                });
                assert_eq!(
                    on.streams,
                    reference.streams,
                    "{}: overlap run changed token streams (chunk {chunk}, \
                     {threads} threads)",
                    factory.name()
                );
                assert_eq!(
                    (&on.scored, &on.hits, &on.misses, &on.bytes_recalled),
                    (
                        &reference.scored,
                        &reference.hits,
                        &reference.misses,
                        &reference.bytes_recalled
                    ),
                    "{}: overlap run changed cache accounting (chunk {chunk}, \
                     {threads} threads)",
                    factory.name()
                );
                assert!(
                    stats.used_pages > 0,
                    "{}: promoted pages must exist for the overlap clock to \
                     have anything to hide (chunk {chunk})",
                    factory.name()
                );
                match &overlap_stats {
                    None => overlap_stats = Some(stats),
                    Some(first) => assert_eq!(
                        &stats,
                        first,
                        "{}: overlap-run staging counters drifted across the \
                         grid (chunk {chunk}, {threads} threads)",
                        factory.name()
                    ),
                }
            }
        }
    }
}
