//! Helpers shared by the integration-test binaries that sweep
//! `RAYON_NUM_THREADS` (each binary is its own process, so the lock only
//! serialises tests *within* one binary — which is exactly the scope the
//! process-global env var needs).

use std::sync::Mutex;

/// Serialises tests that mutate the process-global `RAYON_NUM_THREADS`.
/// Engine results are thread-count invariant (that is the point of the
/// parity suites), so concurrent tests reading a shifting value stay
/// correct; the lock only keeps the sweeps themselves from interleaving.
/// Recover from poisoning (the data is unit) so a genuine parity failure in
/// one test is not obscured by a `PoisonError` in another.
static THREAD_ENV_LOCK: Mutex<()> = Mutex::new(());

pub fn thread_env_lock() -> std::sync::MutexGuard<'static, ()> {
    THREAD_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores (or removes) `RAYON_NUM_THREADS` on drop, so a failing parity
/// assertion cannot leak its sweep value into later tests.
struct ThreadEnvRestore {
    prev: Option<String>,
}

impl Drop for ThreadEnvRestore {
    fn drop(&mut self) {
        match self.prev.take() {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
    }
}

/// Run `body` with `RAYON_NUM_THREADS` set to `threads`, restoring the
/// previous value afterwards. Callers hold [`thread_env_lock`] across their
/// whole sweep.
pub fn with_thread_count<R>(threads: usize, body: impl FnOnce() -> R) -> R {
    let _restore = ThreadEnvRestore {
        prev: std::env::var("RAYON_NUM_THREADS").ok(),
    };
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    body()
}
