//! Scheduler integration tests: the continuous-batching layer over the full
//! ClusterKV serving stack. Scheduling must never change *what* a request
//! generates (only the modeled timestamps), continuous batching must beat
//! the run-to-completion baseline on time-to-first-token under bursty
//! traffic, and the whole report — streams, latencies, accounting — must be
//! bit-identical at any worker-thread count.

mod common;

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_model::{ModelConfig, ServeEngine};
use clusterkv_sched::{SchedConfig, SchedPolicy, Scheduler, ServingReport};
use clusterkv_workloads::{generate_traffic, TrafficConfig};
use common::{thread_env_lock, with_thread_count};

fn engine() -> ServeEngine {
    let factory = ClusterKvFactory::new(
        ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(8)
            .with_decode_cluster_period(8)
            .with_decode_new_clusters(2),
    );
    ServeEngine::builder(ModelConfig::tiny())
        .synthetic_weights(21)
        .budget(Budget::new(24))
        .policy(Box::new(factory))
        .kv_cache_capacity(Bytes(2 * 24 * 32))
        .build()
        .unwrap()
}

/// A bursty trace: arrivals far faster than modeled service, so the queue
/// builds and the scheduling policy matters.
fn burst_traffic() -> Vec<clusterkv_sched::Request> {
    generate_traffic(
        &TrafficConfig::new(8, 50_000.0, ModelConfig::tiny().vocab_size)
            .with_prompt_len(12, 40)
            .with_output_len(3, 8)
            .with_priority_levels(2)
            .with_seed(17),
    )
}

fn serve(policy: SchedPolicy) -> ServingReport {
    let cfg = SchedConfig::fcfs(4)
        .with_policy(policy)
        .with_chunk_tokens(12)
        .with_tick_token_budget(20);
    let mut sched = Scheduler::new(engine(), cfg).unwrap();
    sched.submit_all(burst_traffic()).unwrap();
    sched.run().unwrap()
}

fn streams(report: &ServingReport) -> Vec<Vec<usize>> {
    report.requests.iter().map(|r| r.tokens.clone()).collect()
}

#[test]
fn continuous_batching_beats_run_to_completion_on_ttft() {
    let cb = serve(SchedPolicy::Fcfs);
    let rtc = serve(SchedPolicy::RunToCompletion);
    // Identical per-request outputs: scheduling decides when, never what.
    assert_eq!(streams(&cb), streams(&rtc));
    assert!(
        cb.mean_ttft() < rtc.mean_ttft(),
        "continuous batching must beat run-to-completion on mean TTFT: \
         {} vs {}",
        cb.mean_ttft(),
        rtc.mean_ttft()
    );
    // Fused decode batches also buy throughput, not just latency.
    assert!(cb.makespan <= rtc.makespan);
    assert_eq!(cb.total_generated, rtc.total_generated);
}

#[test]
fn priority_aging_preserves_outputs_and_reorders_service() {
    let fcfs = serve(SchedPolicy::Fcfs);
    let aged = serve(SchedPolicy::PriorityAging {
        aging_per_second: 100.0,
    });
    assert_eq!(streams(&fcfs), streams(&aged));
    // The burst alternates priorities 0/1; under aging the urgent class must
    // not finish later on average than under FCFS.
    let mean_finish = |r: &ServingReport, prio: u32| {
        let v: Vec<f64> = r
            .requests
            .iter()
            .filter(|m| m.priority == prio)
            .map(|m| m.finished_at.get())
            .collect();
        clusterkv_metrics::mean(&v)
    };
    assert!(mean_finish(&aged, 1) <= mean_finish(&fcfs, 1) + 1e-12);
}

#[test]
fn serving_report_is_thread_count_invariant() {
    // The scheduler's clock is driven entirely by modeled costs, which the
    // engine guarantees are thread-invariant — so the full report (streams,
    // TTFTs, cache accounting, makespan) must be bit-identical at any
    // RAYON_NUM_THREADS, batched decode and all.
    let _guard = thread_env_lock();
    let reference = with_thread_count(1, || serve(SchedPolicy::Fcfs));
    assert!(reference.makespan.get() > 0.0);
    for threads in [2usize, 8] {
        let run = with_thread_count(threads, || serve(SchedPolicy::Fcfs));
        assert_eq!(
            run, reference,
            "serving report diverged at {threads} threads"
        );
    }
}

#[test]
fn kv_admission_bound_holds_under_traffic() {
    let kv_per_token = ModelConfig::tiny().kv_bytes_per_token();
    let capacity = Bytes(2 * 48 * kv_per_token); // ~2 worst-case requests
    let cfg = SchedConfig::fcfs(4)
        .with_chunk_tokens(12)
        .with_tick_token_budget(20)
        .with_kv_capacity(capacity);
    let mut sched = Scheduler::new(engine(), cfg).unwrap();
    sched.submit_all(burst_traffic()).unwrap();
    let unbounded = serve(SchedPolicy::Fcfs);
    while !sched.is_idle() {
        sched.tick().unwrap();
        assert!(sched.kv_reserved() <= capacity, "KV bound violated");
        assert!(sched.num_running() <= 4);
    }
    let report = sched.report();
    // The bound throttles concurrency, never correctness.
    assert_eq!(streams(&report), streams(&unbounded));
}
