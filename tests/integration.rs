//! Integration tests spanning every crate of the workspace: the synthetic
//! workload generator, the inference engine, ClusterKV and the baselines,
//! the cluster cache and the analytical latency model.

use clusterkv::{ClusterCache, ClusterCacheConfig};
use clusterkv::{ClusterKvConfig, ClusterKvFactory, DistanceMetric};
use clusterkv_bench::{
    clusterkv_config_for_ablation, evaluate, evaluate_clusterkv_variant, Method,
};
use clusterkv_kvcache::types::Budget;
use clusterkv_kvcache::DeviceModel;
use clusterkv_model::latency::StepCost;
use clusterkv_model::policy::{HeadContext, SelectorFactory};
use clusterkv_model::{InferenceEngine, LatencyModel, ModelConfig, ModelPreset};
use clusterkv_workloads::{
    perplexity_proxy, run_episode, run_episode_cached, Episode, EpisodeConfig, LongBenchDataset,
};

fn accuracy_episode(context_len: usize, seed: u64) -> Episode {
    Episode::generate(
        EpisodeConfig::default()
            .with_context_len(context_len)
            .with_decode_steps(24)
            .with_num_topics((context_len / 160).max(6))
            .with_seed(seed),
    )
}

#[test]
fn clusterkv_recall_beats_quest_and_tracks_full_kv() {
    // The Fig. 11a ordering at a moderate budget: ClusterKV > Quest, and
    // ClusterKV gets reasonably close to the oracle recall of 1.0.
    let episode = accuracy_episode(1024, 0xAB);
    let budget = 128;
    let ckv = evaluate(Method::ClusterKv, &episode, budget);
    let quest = evaluate(Method::Quest, &episode, budget);
    let full = evaluate(Method::FullKv, &episode, budget);

    assert!((full.mean_recall() - 1.0).abs() < 1e-9);
    assert!(
        ckv.mean_recall() > quest.mean_recall(),
        "ClusterKV recall {:.3} must exceed Quest {:.3}",
        ckv.mean_recall(),
        quest.mean_recall()
    );
    assert!(
        ckv.mean_recall() > 0.5,
        "ClusterKV recall {:.3} unexpectedly low",
        ckv.mean_recall()
    );
}

#[test]
fn recall_improves_with_budget_for_clusterkv() {
    // Fig. 11a shape: recall grows monotonically (up to noise) with budget.
    let episode = accuracy_episode(1024, 0xB0);
    let small = evaluate(Method::ClusterKv, &episode, 64);
    let large = evaluate(Method::ClusterKv, &episode, 256);
    assert!(
        large.mean_recall() >= small.mean_recall() - 0.02,
        "recall should not degrade with a larger budget: {:.3} -> {:.3}",
        small.mean_recall(),
        large.mean_recall()
    );
}

#[test]
fn longbench_scores_follow_the_papers_ordering() {
    // Fig. 9 / Table I shape on one dataset profile: Full KV >= ClusterKV >=
    // Quest, with ClusterKV close to Full KV.
    let profile = LongBenchDataset::TwoWikiMqa.profile();
    let episode = Episode::generate(EpisodeConfig {
        context_len: 1536,
        decode_steps: 24,
        ..profile.episode
    });
    let budget = 256;
    let full = evaluate(Method::FullKv, &episode, budget);
    let ckv = evaluate(Method::ClusterKv, &episode, budget);
    let quest = evaluate(Method::Quest, &episode, budget);
    let s_full = profile.score(&full);
    let s_ckv = profile.score(&ckv);
    let s_quest = profile.score(&quest);
    assert!(
        s_full >= s_ckv && s_ckv > s_quest,
        "{s_full} >= {s_ckv} > {s_quest}"
    );
    assert!((s_full - profile.full_kv_score).abs() < 1e-6);
}

#[test]
fn perplexity_proxy_orders_methods_like_fig10() {
    let episode = accuracy_episode(1536, 0xC0);
    let budget = 256;
    let full = perplexity_proxy(&evaluate(Method::FullKv, &episode, budget));
    let ckv = perplexity_proxy(&evaluate(Method::ClusterKv, &episode, budget));
    let quest = perplexity_proxy(&evaluate(Method::Quest, &episode, budget));
    assert!(full <= ckv, "full {full} <= clusterkv {ckv}");
    assert!(ckv < quest, "clusterkv {ckv} < quest {quest}");
}

#[test]
fn cosine_distance_recalls_at_least_as_well_as_l2_and_inner_product() {
    // Fig. 11b ablation shape.
    let episode = accuracy_episode(1024, 0xD0);
    let budget = 128;
    let c0 = 16;
    let recall_of = |metric: DistanceMetric| {
        evaluate_clusterkv_variant(
            clusterkv_config_for_ablation(metric, c0, 1024),
            &episode,
            budget,
        )
        .mean_recall()
    };
    let cosine = recall_of(DistanceMetric::Cosine);
    let l2 = recall_of(DistanceMetric::L2);
    let ip = recall_of(DistanceMetric::InnerProduct);
    assert!(cosine >= l2 - 0.1, "cosine {cosine:.3} vs l2 {l2:.3}");
    assert!(
        cosine >= ip - 0.1,
        "cosine {cosine:.3} vs inner product {ip:.3}"
    );
}

#[test]
fn more_clusters_do_not_hurt_recall() {
    // Fig. 11b: increasing C0 improves recall (with diminishing returns).
    let episode = accuracy_episode(1024, 0xE0);
    let budget = 128;
    let coarse = evaluate_clusterkv_variant(
        clusterkv_config_for_ablation(DistanceMetric::Cosine, 4, 1024),
        &episode,
        budget,
    );
    let fine = evaluate_clusterkv_variant(
        clusterkv_config_for_ablation(DistanceMetric::Cosine, 32, 1024),
        &episode,
        budget,
    );
    assert!(
        fine.mean_recall() >= coarse.mean_recall() - 0.02,
        "C0=32 recall {:.3} should be >= C0=4 recall {:.3}",
        fine.mean_recall(),
        coarse.mean_recall()
    );
}

#[test]
fn cluster_cache_hit_rate_grows_with_recency_window() {
    // §V-C: a GPU cache sized for R = 2 steps of selected KV retains more
    // clusters than one sized for R = 1.
    let episode = accuracy_episode(2048, 0xF0);
    let hit_rate = |r: usize| {
        let config = ClusterKvConfig::default();
        let factory = ClusterKvFactory::new(config);
        let mut sel = factory.create(HeadContext {
            layer: 2,
            head: 0,
            head_dim: episode.config.head_dim,
        });
        // One step's cluster-granularity recall can overshoot the budget by
        // up to one trimmed cluster, so the R-step-equivalent capacity is
        // sized for budget + tokens_per_cluster tokens per step.
        let mut cache = ClusterCache::new(ClusterCacheConfig::for_recency_window(
            r,
            256 + config.tokens_per_cluster,
            episode.config.head_dim,
        ));
        let result = run_episode_cached(&episode, sel.as_mut(), Budget::new(256), &mut cache);
        result.stats.cache.hit_rate()
    };
    let r1 = hit_rate(1);
    let r2 = hit_rate(2);
    assert!(r1 > 0.2, "R=1 hit rate {r1:.2} unexpectedly low");
    assert!(r2 >= r1, "R=2 hit rate {r2:.2} must be >= R=1 {r1:.2}");
}

#[test]
fn cache_hit_rate_is_monotone_in_capacity_and_saturates_at_full_kv() {
    // The §V-C capacity story end-to-end: a larger GPU cluster cache never
    // hits less, and once it holds the full KV nothing is ever recalled.
    let episode = accuracy_episode(512, 0xCA);
    let head_dim = episode.config.head_dim;
    let bytes_per_token = 4 * head_dim as u64; // K+V fp16
    let full_kv = bytes_per_token * (512 + episode.decode_steps()) as u64;
    let run_at = |capacity: u64| {
        let factory = ClusterKvFactory::new(ClusterKvConfig::default());
        let mut sel = factory.create(HeadContext {
            layer: 2,
            head: 0,
            head_dim,
        });
        let mut cache = ClusterCache::new(ClusterCacheConfig::new(
            clusterkv_kvcache::types::Bytes(capacity),
            head_dim,
        ));
        run_episode_cached(&episode, sel.as_mut(), Budget::new(64), &mut cache).stats
    };
    let capacities = [
        0,
        full_kv / 16,
        full_kv / 8,
        full_kv / 4,
        full_kv / 2,
        full_kv,
        2 * full_kv,
    ];
    let rates: Vec<f64> = capacities
        .iter()
        .map(|&c| run_at(c).cache.hit_rate())
        .collect();
    for (pair, caps) in rates.windows(2).zip(capacities.windows(2)) {
        assert!(
            pair[1] >= pair[0],
            "hit rate fell from {:.3} to {:.3} when capacity grew {} -> {}: {rates:?}",
            pair[0],
            pair[1],
            caps[0],
            caps[1]
        );
    }
    assert_eq!(rates[0], 0.0, "no cache, no hits");
    let saturated = run_at(2 * full_kv);
    assert_eq!(
        saturated.cache.hit_rate(),
        1.0,
        "capacity >= full KV must never recall"
    );
    assert_eq!(saturated.transfer.bytes_to_device.get(), 0);
}

#[test]
fn end_to_end_engine_runs_with_every_method() {
    let config = ModelConfig::tiny();
    let prompt: Vec<usize> = (0..48).map(|i| (i * 5) % config.vocab_size).collect();
    for method in Method::all() {
        let factory = method.factory();
        let mut engine =
            InferenceEngine::with_synthetic_weights(config, 9, factory.as_ref(), Budget::new(24))
                .unwrap();
        let generated = engine.generate(&prompt, 6).unwrap();
        assert_eq!(generated.len(), 6, "{method}");
        assert!(
            generated.iter().all(|&t| t < config.vocab_size),
            "{method} produced out-of-vocabulary tokens"
        );
        assert_eq!(engine.context_len(), prompt.len() + 6, "{method}");
    }
}

#[test]
fn latency_model_reproduces_fig12_shape() {
    let model = LatencyModel::new(ModelPreset::Llama31_8b.config(), DeviceModel::ada6000());
    let prompt = 32_768;
    let decode = 512;
    let full = model.run(prompt, decode, None, StepCost::full_kv);
    let clusterkv = model.run(prompt, decode, Some((prompt / 80, 10)), |ctx| StepCost {
        scored_vectors_per_head: (ctx as f64 / 80.0).max(1.0),
        attended_tokens: 1024.0,
        transferred_tokens_per_head: 1024.0 * 0.37,
        transferred_compressed_bytes: 0.0,
        staged_transfer_bytes: 0.0,
        retried_transfer_bytes: 0.0,
        retry_backoff_seconds: 0.0,
    });
    let speedup = full.total.get() / clusterkv.total.get();
    assert!(speedup > 1.2, "end-to-end speedup {speedup:.2} too small");
    let thpt_gain = clusterkv.decode_throughput / full.decode_throughput;
    assert!(thpt_gain > 1.5, "throughput gain {thpt_gain:.2} too small");
    let prefill = model.prefill_breakdown(prompt, Some((prompt / 80, 10)));
    let frac = prefill.clustering_fraction();
    assert!(
        frac < 0.2,
        "clustering should be a small fraction of prefill ({frac:.2})"
    );
}

#[test]
fn fig13_shape_clusterkv_beats_infinigen_and_matches_quest() {
    // Fig. 13a: ClusterKV is clearly faster than InfiniGen on the
    // offload-constrained OPT-class configuration.
    let opt = LatencyModel::new(
        ModelPreset::Opt6_7b.config(),
        DeviceModel::offload_constrained(),
    );
    let infinigen = opt.run(2048, 256, None, |ctx| StepCost {
        scored_vectors_per_head: ctx as f64 * 0.25,
        attended_tokens: 256.0,
        transferred_tokens_per_head: 256.0,
        transferred_compressed_bytes: 0.0,
        staged_transfer_bytes: 0.0,
        retried_transfer_bytes: 0.0,
        retry_backoff_seconds: 0.0,
    });
    let clusterkv_opt = opt.run(2048, 256, Some((2048 / 80, 10)), |ctx| StepCost {
        scored_vectors_per_head: (ctx as f64 / 80.0).max(1.0),
        attended_tokens: 256.0,
        transferred_tokens_per_head: 256.0 * 0.37,
        transferred_compressed_bytes: 0.0,
        staged_transfer_bytes: 0.0,
        retried_transfer_bytes: 0.0,
        retry_backoff_seconds: 0.0,
    });
    assert!(infinigen.total.get() / clusterkv_opt.total.get() > 1.1);

    // Fig. 13b: ClusterKV is within ~15% of Quest on the Llama-class config.
    let llama = LatencyModel::new(ModelPreset::Llama31_8b.config(), DeviceModel::ada6000());
    let quest = llama.run(16_384, 256, None, |ctx| StepCost {
        scored_vectors_per_head: ctx as f64 / 16.0,
        attended_tokens: 1024.0,
        transferred_tokens_per_head: 0.0,
        transferred_compressed_bytes: 0.0,
        staged_transfer_bytes: 0.0,
        retried_transfer_bytes: 0.0,
        retry_backoff_seconds: 0.0,
    });
    let clusterkv = llama.run(16_384, 256, Some((16_384 / 80, 10)), |ctx| StepCost {
        scored_vectors_per_head: (ctx as f64 / 80.0).max(1.0),
        attended_tokens: 1024.0,
        transferred_tokens_per_head: 1024.0 * 0.37,
        transferred_compressed_bytes: 0.0,
        staged_transfer_bytes: 0.0,
        retried_transfer_bytes: 0.0,
        retry_backoff_seconds: 0.0,
    });
    let deviation = (clusterkv.total.get() - quest.total.get()).abs() / quest.total.get();
    assert!(
        deviation < 0.15,
        "deviation from Quest {deviation:.2} too large"
    );
}

#[test]
fn non_recallable_baselines_lose_recall_under_importance_drift() {
    use clusterkv_baselines::{H2oFactory, StreamingFactory};
    let episode = accuracy_episode(1024, 0x1D);
    let budget = 128;
    let ckv = evaluate(Method::ClusterKv, &episode, budget).mean_recall();
    for factory in [
        Box::new(H2oFactory::default()) as Box<dyn SelectorFactory>,
        Box::new(StreamingFactory::default()),
    ] {
        let mut sel = factory.create(HeadContext {
            layer: 2,
            head: 0,
            head_dim: episode.config.head_dim,
        });
        let r = run_episode(&episode, sel.as_mut(), Budget::new(budget));
        assert!(
            ckv > r.mean_recall(),
            "ClusterKV ({ckv:.3}) should out-recall the non-recallable {} ({:.3})",
            sel.name(),
            r.mean_recall()
        );
    }
}
