//! Long-document QA: compare recall and score of ClusterKV against Quest and
//! InfiniGen on a LongBench-style synthetic retrieval task.
//!
//! ```bash
//! cargo run --release -p clusterkv-repro --example long_document_qa
//! ```
//!
//! This is the workload the paper's introduction motivates: a long document
//! whose relevant facts move around as the answer is generated. The example
//! prints, per method, the recall of the truly important tokens and the
//! dataset-style score at a 512-token budget.

use clusterkv::ClusterKvFactory;
use clusterkv_baselines::{InfiniGenFactory, QuestFactory};
use clusterkv_kvcache::types::Budget;
use clusterkv_model::policy::{HeadContext, SelectorFactory};
use clusterkv_workloads::{run_episode, Episode, LongBenchDataset};

fn main() {
    let dataset = LongBenchDataset::HotpotQa;
    let profile = dataset.profile();
    let episode = Episode::generate(profile.episode);
    let budget = Budget::new(512);

    println!(
        "dataset: {dataset} ({} metric, {} context tokens, {} decode steps)\n",
        profile.metric, profile.episode.context_len, profile.episode.decode_steps
    );
    println!(
        "{:<12} {:>8} {:>12} {:>10}",
        "method", "recall", "attn error", "score"
    );

    let factories: Vec<Box<dyn SelectorFactory>> = vec![
        Box::new(QuestFactory::default()),
        Box::new(InfiniGenFactory::default()),
        Box::new(ClusterKvFactory::default()),
    ];
    for factory in &factories {
        let mut selector = factory.create(HeadContext {
            layer: 2,
            head: 0,
            head_dim: profile.episode.head_dim,
        });
        let result = run_episode(&episode, selector.as_mut(), budget);
        println!(
            "{:<12} {:>8.3} {:>12.3} {:>10.2}",
            factory.name(),
            result.mean_recall(),
            result.mean_error(),
            profile.score(&result)
        );
    }
    println!(
        "\nFull-KV reference score for this dataset: {:.2}",
        profile.full_kv_score
    );
}
