//! Quickstart: serve a small transformer with ClusterKV-compressed attention.
//!
//! ```bash
//! cargo run --release -p clusterkv-repro --example quickstart
//! ```
//!
//! The example builds a tiny synthetic model inside a `ServeEngine`, opens
//! two sessions over the same weights — a full-KV reference and a ClusterKV
//! session under a tight budget — decodes them in lockstep with
//! `decode_batch`, and prints the selection statistics ClusterKV accumulated
//! along the way.

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_model::policy::FullAttentionFactory;
use clusterkv_model::{ModelPreset, ServeEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down Llama-like model with deterministic synthetic weights.
    let mut config = ModelPreset::Llama31_8b.scaled_down();
    config.max_context = 4096;
    let prompt: Vec<usize> = (0..160).map(|i| (i * 17 + 3) % config.vocab_size).collect();

    // One engine owns the weights; sessions choose their policy. ClusterKV
    // uses the paper's configuration (scaled sink/cluster sizes for the
    // short prompt) under a 64-token budget; the full-attention policy is
    // exempt from the budget and serves as the exact reference.
    let ckv_config = ClusterKvConfig::default()
        .with_sink_tokens(8)
        .with_tokens_per_cluster(16)
        .with_decode_cluster_period(8);
    // The GPU cluster cache holds about one step's worth of selected
    // clusters (R = 1 equivalent); the full KV lives in the CPU backing
    // store and is recalled on misses.
    let capacity = Bytes(config.selected_kv_bytes_per_step(64 + ckv_config.tokens_per_cluster));
    let mut engine = ServeEngine::builder(config)
        .synthetic_weights(42)
        .budget(Budget::new(64))
        .policy(Box::new(ClusterKvFactory::new(ckv_config)))
        .kv_cache_capacity(capacity)
        .build()?;

    let clusterkv = engine.create_session()?; // default policy: ClusterKV
    let full = engine.create_session_with(&FullAttentionFactory)?;
    engine.prefill(clusterkv, &prompt)?;
    engine.prefill(full, &prompt)?;

    // Decode both sessions in lockstep.
    let mut ckv_output = Vec::new();
    let mut full_output = Vec::new();
    for _ in 0..16 {
        let outputs = engine.decode_batch(&[clusterkv, full])?;
        ckv_output.push(outputs[0].next_token);
        full_output.push(outputs[1].next_token);
    }

    println!("prompt length        : {} tokens", prompt.len());
    println!("full-KV generation   : {full_output:?}");
    println!("ClusterKV generation : {ckv_output:?}");
    let matching = full_output
        .iter()
        .zip(&ckv_output)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "agreement            : {matching}/{} tokens identical under a {}-token budget",
        full_output.len(),
        engine.budget().tokens()
    );

    let report = engine.release(clusterkv)?;
    println!(
        "\nClusterKV selection statistics (all heads of session {}):",
        report.id
    );
    println!(
        "  centroids scored        : {}",
        report.stats.scored_vectors
    );
    println!(
        "  cluster-cache hit rate  : {:.1}%",
        report.cache_hit_rate() * 100.0
    );
    println!(
        "  tokens fetched from CPU : {}",
        report.stats.transfer.tokens_moved
    );
    println!("  bytes recalled via PCIe : {}", report.bytes_recalled());
    println!("  modeled decode latency  : {}", report.modeled_decode_time);
    Ok(())
}
