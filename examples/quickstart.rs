//! Quickstart: run a small transformer with ClusterKV-compressed attention.
//!
//! ```bash
//! cargo run --release -p clusterkv --example quickstart
//! ```
//!
//! The example builds a tiny synthetic model, generates a few tokens with the
//! full KV cache and with ClusterKV under a tight budget, and prints the
//! selection statistics ClusterKV accumulated along the way.

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_kvcache::types::Budget;
use clusterkv_model::policy::FullAttentionFactory;
use clusterkv_model::{InferenceEngine, ModelPreset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down Llama-like model with deterministic synthetic weights.
    let mut config = ModelPreset::Llama31_8b.scaled_down();
    config.max_context = 4096;
    let prompt: Vec<usize> = (0..160).map(|i| (i * 17 + 3) % config.vocab_size).collect();

    // Reference: full KV cache.
    let mut full_engine = InferenceEngine::with_synthetic_weights(
        config,
        42,
        &FullAttentionFactory,
        Budget::new(usize::MAX),
    )?;
    let full_output = full_engine.generate(&prompt, 16)?;

    // ClusterKV with the paper's configuration (scaled sink/cluster sizes for
    // the short prompt) and a 64-token budget.
    let ckv_config = ClusterKvConfig::default()
        .with_sink_tokens(8)
        .with_tokens_per_cluster(16)
        .with_decode_cluster_period(8);
    let factory = ClusterKvFactory::new(ckv_config);
    let mut ckv_engine =
        InferenceEngine::with_synthetic_weights(config, 42, &factory, Budget::new(64))?;
    let ckv_output = ckv_engine.generate(&prompt, 16)?;

    println!("prompt length        : {} tokens", prompt.len());
    println!("full-KV generation   : {full_output:?}");
    println!("ClusterKV generation : {ckv_output:?}");
    let matching = full_output
        .iter()
        .zip(&ckv_output)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "agreement            : {matching}/{} tokens identical under a {}-token budget",
        full_output.len(),
        ckv_engine.budget().tokens()
    );

    let stats = ckv_engine.policy_stats();
    println!("\nClusterKV selection statistics (all heads):");
    println!("  centroids scored        : {}", stats.scored_vectors);
    println!("  cluster-cache hit rate  : {:.1}%", stats.cache.hit_rate() * 100.0);
    println!("  tokens fetched from CPU : {}", stats.transfer.tokens_moved);
    Ok(())
}
