//! Latency sweep: estimate end-to-end inference latency and decoding
//! throughput of ClusterKV against the full KV cache across prompt lengths
//! and budgets, using the analytical device model.
//!
//! ```bash
//! cargo run --release -p clusterkv-repro --example latency_sweep
//! ```

use clusterkv_kvcache::DeviceModel;
use clusterkv_model::latency::StepCost;
use clusterkv_model::{LatencyModel, ModelPreset};

fn main() {
    let model = LatencyModel::new(ModelPreset::Llama31_8b.config(), DeviceModel::ada6000());
    let decode_len = 512;
    let cache_hit_rate = 0.63; // cluster-cache hit rate with R = 1 (§V-C)

    println!(
        "model: {}  |  device: Ada-6000 analytical model  |  decode length: {decode_len}\n",
        ModelPreset::Llama31_8b
    );
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>10} {:>12}",
        "prompt", "budget", "full KV (s)", "ClusterKV (s)", "speedup", "thpt gain"
    );

    for prompt in [8_192usize, 16_384, 32_768] {
        let full = model.run(prompt, decode_len, None, StepCost::full_kv);
        for budget in [512usize, 1024, 2048] {
            let clusterkv = model.run(prompt, decode_len, Some((prompt / 80, 10)), |ctx| {
                StepCost {
                    scored_vectors_per_head: (ctx as f64 / 80.0).max(1.0),
                    attended_tokens: budget as f64,
                    transferred_tokens_per_head: budget as f64 * (1.0 - cache_hit_rate),
                    transferred_compressed_bytes: 0.0,
                    staged_transfer_bytes: 0.0,
                    retried_transfer_bytes: 0.0,
                    retry_backoff_seconds: 0.0,
                }
            });
            println!(
                "{:>7}k {:>10} {:>14.2} {:>14.2} {:>9.2}x {:>11.2}x",
                prompt / 1024,
                budget,
                full.total.get(),
                clusterkv.total.get(),
                full.total.get() / clusterkv.total.get(),
                clusterkv.decode_throughput / full.decode_throughput,
            );
        }
    }
    println!("\nThe clustering overhead during prefill stays in the single-digit percent range:");
    for prompt in [8_192usize, 32_768] {
        let bd = model.prefill_breakdown(prompt, Some((prompt / 80, 10)));
        println!(
            "  P = {:>2}k: prefill {:.2}s, clustering {:.3}s ({:.1}% of prefill)",
            prompt / 1024,
            bd.base.get(),
            bd.clustering.get(),
            bd.clustering_fraction() * 100.0
        );
    }
}
