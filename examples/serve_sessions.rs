//! Multi-session serving demo: one engine, one copy of the weights, several
//! concurrent sequences decoding in lockstep through `decode_batch`.
//!
//! ```bash
//! cargo run --release -p clusterkv-repro --example serve_sessions
//! ```
//!
//! Six sessions — four ClusterKV "users" with different prompts, one Quest
//! session and one full-KV reference — are prefilled independently and then
//! advanced together, one batched decode step at a time. At the end every
//! session is released and its accumulated selection statistics printed,
//! demonstrating that cost accounting is tracked per session.

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_baselines::QuestFactory;
use clusterkv_kvcache::types::Budget;
use clusterkv_model::policy::FullAttentionFactory;
use clusterkv_model::{ModelPreset, ServeEngine, SessionId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ModelPreset::Llama31_8b.scaled_down();
    config.max_context = 4096;

    // The engine owns weights and configuration exactly once; the ClusterKV
    // factory is the default policy for new sessions.
    let ckv_config = ClusterKvConfig::default()
        .with_sink_tokens(8)
        .with_tokens_per_cluster(16)
        .with_decode_cluster_period(8);
    let mut engine = ServeEngine::builder(config)
        .synthetic_weights(42)
        .budget(Budget::new(64))
        .policy(Box::new(ClusterKvFactory::new(ckv_config)))
        .build()?;

    // Four concurrent ClusterKV sessions with distinct prompts...
    let mut sessions: Vec<(SessionId, &'static str)> = Vec::new();
    for user in 0..4 {
        let id = engine.create_session()?;
        sessions.push((id, "ClusterKV"));
        let prompt: Vec<usize> = (0..120 + 10 * user)
            .map(|i| (i * 17 + 31 * user + 3) % engine.config().vocab_size)
            .collect();
        engine.prefill(id, &prompt)?;
    }
    // ...plus one Quest session and one full-KV reference session: policies
    // can be mixed freely within one engine.
    let quest = engine.create_session_with(&QuestFactory::default())?;
    sessions.push((quest, "Quest"));
    let full = engine.create_session_with(&FullAttentionFactory)?;
    sessions.push((full, "FullKV"));
    for &(id, _) in &sessions[4..] {
        let prompt: Vec<usize> = (0..140)
            .map(|i| (i * 13 + 5) % engine.config().vocab_size)
            .collect();
        engine.prefill(id, &prompt)?;
    }

    println!(
        "serving {} concurrent sessions on one engine (budget {})\n",
        engine.num_sessions(),
        engine.budget().tokens()
    );

    // Lockstep batched decoding: every step advances all sessions once.
    let ids: Vec<SessionId> = sessions.iter().map(|&(id, _)| id).collect();
    let steps = 12;
    let mut streams: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
    for _ in 0..steps {
        let outputs = engine.decode_batch(&ids)?;
        for (stream, out) in streams.iter_mut().zip(&outputs) {
            stream.push(out.next_token);
        }
    }

    println!(
        "{:<10} {:>8} {:>9}  generated tokens",
        "session", "policy", "context"
    );
    for ((id, policy), stream) in sessions.iter().zip(&streams) {
        println!(
            "{:<10} {:>8} {:>9}  {:?}",
            id.to_string(),
            policy,
            engine.context_len(*id)?,
            stream
        );
    }

    println!("\nper-session selection statistics at release:");
    for (id, policy) in sessions {
        let report = engine.release(id)?;
        println!(
            "{:<10} {:>8}  scored={:<6} cache hit rate={:>5.1}%  tokens fetched={}",
            report.id.to_string(),
            policy,
            report.stats.scored_vectors,
            report.stats.cache.hit_rate() * 100.0,
            report.stats.transfer.tokens_moved,
        );
    }
    assert_eq!(engine.num_sessions(), 0);
    Ok(())
}
