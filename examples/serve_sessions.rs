//! Multi-session serving demo: one engine, one copy of the weights, several
//! concurrent sequences decoding in lockstep through `decode_batch`.
//!
//! ```bash
//! cargo run --release -p clusterkv-repro --example serve_sessions
//! ```
//!
//! Six sessions — four ClusterKV "users" with different prompts, one Quest
//! session and one full-KV reference — are prefilled independently and then
//! advanced together, one batched decode step at a time. Each batched step
//! fans the sessions out across the rayon worker pool (set
//! `RAYON_NUM_THREADS` to pin the width; token streams are identical at any
//! thread count — DESIGN.md §4). Every session owns a tiered KV hierarchy
//! (a bounded GPU cluster cache over the CPU backing store), so at the end
//! each release report carries the session's cache hit rate and the bytes
//! it recalled over PCIe.

use clusterkv::{ClusterKvConfig, ClusterKvFactory};
use clusterkv_baselines::QuestFactory;
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_model::policy::FullAttentionFactory;
use clusterkv_model::{ModelPreset, ServeEngine, SessionId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ModelPreset::Llama31_8b.scaled_down();
    config.max_context = 4096;

    // The engine owns weights and configuration exactly once; the ClusterKV
    // factory is the default policy for new sessions. Each session gets a
    // GPU cluster cache holding about one step's worth of selected clusters
    // (R = 1 equivalent) — smaller than the full KV of these prompts, so
    // recalls are real.
    let ckv_config = ClusterKvConfig::default()
        .with_sink_tokens(8)
        .with_tokens_per_cluster(16)
        .with_decode_cluster_period(8);
    let capacity = Bytes(config.selected_kv_bytes_per_step(64));
    let mut engine = ServeEngine::builder(config)
        .synthetic_weights(42)
        .budget(Budget::new(64))
        .policy(Box::new(ClusterKvFactory::new(ckv_config)))
        .kv_cache_capacity(capacity)
        .build()?;

    // Four concurrent ClusterKV sessions with distinct prompts...
    let mut sessions: Vec<(SessionId, &'static str)> = Vec::new();
    for user in 0..4 {
        let id = engine.create_session()?;
        sessions.push((id, "ClusterKV"));
        let prompt: Vec<usize> = (0..120 + 10 * user)
            .map(|i| (i * 17 + 31 * user + 3) % engine.config().vocab_size)
            .collect();
        engine.prefill(id, &prompt)?;
    }
    // ...plus one Quest session and one full-KV reference session: policies
    // can be mixed freely within one engine.
    let quest = engine.create_session_with(&QuestFactory::default())?;
    sessions.push((quest, "Quest"));
    let full = engine.create_session_with(&FullAttentionFactory)?;
    sessions.push((full, "FullKV"));
    for &(id, _) in &sessions[4..] {
        let prompt: Vec<usize> = (0..140)
            .map(|i| (i * 13 + 5) % engine.config().vocab_size)
            .collect();
        engine.prefill(id, &prompt)?;
    }

    println!(
        "serving {} concurrent sessions on one engine (budget {}, {} worker thread(s))\n",
        engine.num_sessions(),
        engine.budget().tokens(),
        rayon::current_num_threads()
    );

    // Lockstep batched decoding: every step advances all sessions once.
    let ids: Vec<SessionId> = sessions.iter().map(|&(id, _)| id).collect();
    let steps = 12;
    let mut streams: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
    for _ in 0..steps {
        let outputs = engine.decode_batch(&ids)?;
        for (stream, out) in streams.iter_mut().zip(&outputs) {
            stream.push(out.next_token);
        }
    }

    println!(
        "{:<10} {:>8} {:>9}  generated tokens",
        "session", "policy", "context"
    );
    for ((id, policy), stream) in sessions.iter().zip(&streams) {
        println!(
            "{:<10} {:>8} {:>9}  {:?}",
            id.to_string(),
            policy,
            engine.context_len(*id)?,
            stream
        );
    }

    println!("\nper-session residency statistics at release:");
    for (id, policy) in sessions {
        let report = engine.release(id)?;
        println!(
            "{:<10} {:>8}  scored={:<6} cache hit rate={:>5.1}%  recalled={:>10}  \
             modeled decode={}",
            report.id.to_string(),
            policy,
            report.stats.scored_vectors,
            report.cache_hit_rate() * 100.0,
            report.bytes_recalled().to_string(),
            report.modeled_decode_time,
        );
    }
    assert_eq!(engine.num_sessions(), 0);
    Ok(())
}
