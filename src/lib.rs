//! Workspace facade for the ClusterKV reproduction.
//!
//! This crate exists to own the cross-crate integration tests (`tests/`) and
//! the runnable examples (`examples/`); it also re-exports the entry points a
//! downstream user would reach for first. See the individual crates for the
//! actual implementation:
//!
//! * [`clusterkv`](::clusterkv) — the ClusterKV algorithm (clustering,
//!   selection, cluster cache, policy).
//! * [`clusterkv_model`] — the serving engine ([`ServeEngine`]) and the
//!   selection-plan policy interface.
//! * [`clusterkv_baselines`] — Quest, InfiniGen, H2O, StreamingLLM.
//! * [`clusterkv_workloads`] / [`clusterkv_bench`] — synthetic workloads and
//!   the figure-reproduction harness.

#![warn(missing_docs)]

pub use clusterkv::{ClusterKvConfig, ClusterKvFactory, ClusterKvSelector};
pub use clusterkv_model::{
    DecodeOutput, EngineError, InferenceEngine, ModelConfig, ModelPreset, ServeEngine,
    ServeEngineBuilder, SessionId,
};
