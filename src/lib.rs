//! Workspace facade for the ClusterKV reproduction.
//!
//! This crate exists to own the cross-crate integration tests (`tests/`) and
//! the runnable examples (`examples/`); it also re-exports the entry points a
//! downstream user would reach for first. See the individual crates for the
//! actual implementation:
//!
//! * `clusterkv` — the ClusterKV algorithm (clustering, selection, policy).
//! * [`clusterkv_model`] — the serving engine ([`ServeEngine`]) and the
//!   selection-plan policy interface.
//! * [`clusterkv_kvcache`] — the KV substrate, including the tiered
//!   [`ClusterCache`] memory hierarchy (DESIGN.md §3).
//! * [`clusterkv_baselines`] — Quest, InfiniGen, H2O, StreamingLLM.
//! * [`clusterkv_workloads`] / [`clusterkv_bench`] — synthetic workloads and
//!   the figure-reproduction harness.

#![warn(missing_docs)]

pub use clusterkv::{ClusterKvConfig, ClusterKvFactory, ClusterKvSelector};
pub use clusterkv_kvcache::{ClusterCache, ClusterCacheConfig, PageRequest};
pub use clusterkv_model::{
    DecodeOutput, EngineError, InferenceEngine, KvResidency, ModelConfig, ModelPreset, ServeEngine,
    ServeEngineBuilder, SessionId, SessionReport,
};
